//! The real AMPED web server: one event-loop thread multiplexing all
//! connections with `poll(2)`, plus helper threads for disk I/O.
//!
//! Faithful to the paper's structure (§3.4, §5):
//!
//! * the event loop never touches the filesystem — every open/read goes
//!   to a **helper** (threads here rather than forked processes; the
//!   paper's §3.4 allows either, and threads are the natural choice on a
//!   modern OS);
//! * helpers return only a *notification* (one byte on a socketpair, the
//!   moral equivalent of the paper's IPC pipe); the content itself goes
//!   into the shared content cache;
//! * responses are served from an LRU content cache with pre-rendered,
//!   §5.5 alignment-padded headers;
//! * concurrent requests for the same missing file coalesce onto one
//!   helper job.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use flash_http::request::{ParseStatus, Request};
use flash_http::response::{error_body, ResponseHeader, Status};
use flash_http::Method;

use crate::cache::{ContentCache, Entry};
use crate::poll::{poll_fds, PollFd, POLL_IN, POLL_OUT};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Directory served as the document root.
    pub docroot: PathBuf,
    /// Number of helper threads (the AMPED helper pool).
    pub helpers: usize,
    /// Content-cache capacity in bytes.
    pub cache_bytes: u64,
}

impl NetConfig {
    /// A config serving `docroot` with sensible defaults.
    pub fn new(docroot: impl Into<PathBuf>) -> Self {
        NetConfig {
            docroot: docroot.into(),
            helpers: 4,
            cache_bytes: 64 * 1024 * 1024,
        }
    }
}

/// Live counters exposed by a running server.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Completed responses (any status).
    pub requests: AtomicU64,
    /// Jobs executed by helper threads (content-cache misses).
    pub helper_jobs: AtomicU64,
    /// Responses served from the content cache.
    pub cache_hits: AtomicU64,
}

/// Handle to a running server; dropping it does **not** stop the server —
/// call [`Server::stop`].
pub struct Server {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    wake_tx: UnixStream,
    event_thread: Option<JoinHandle<()>>,
    helper_threads: Vec<JoinHandle<()>>,
}

struct Job {
    path: String,
    fs_path: PathBuf,
}

struct Done {
    path: String,
    result: io::Result<Vec<u8>>,
}

enum ConnState {
    Reading,
    Waiting,
    Writing,
}

struct Conn {
    stream: TcpStream,
    parser: flash_http::RequestParser,
    state: ConnState,
    out: std::collections::VecDeque<Bytes>,
    out_off: usize,
    keep_alive: bool,
    head_only: bool,
}

impl Server {
    /// Binds `addr` and starts the event loop plus helper threads.
    pub fn start(addr: impl ToSocketAddrs, cfg: NetConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (job_tx, job_rx) = unbounded::<Job>();
        let (done_tx, done_rx) = unbounded::<Done>();
        let (wake_tx, notify_rx) = UnixStream::pair()?;
        notify_rx.set_nonblocking(true)?;

        let mut helper_threads = Vec::new();
        for i in 0..cfg.helpers.max(1) {
            let rx = job_rx.clone();
            let tx = done_tx.clone();
            let notify = wake_tx.try_clone()?;
            let stats2 = Arc::clone(&stats);
            helper_threads.push(
                std::thread::Builder::new()
                    .name(format!("flash-helper-{i}"))
                    .spawn(move || helper_main(rx, tx, notify, stats2))?,
            );
        }
        drop(done_tx);

        let shutdown2 = Arc::clone(&shutdown);
        let stats2 = Arc::clone(&stats);
        let event_thread = std::thread::Builder::new()
            .name("flash-event-loop".into())
            .spawn(move || {
                event_loop(listener, notify_rx, job_tx, done_rx, cfg, shutdown2, stats2)
            })?;

        Ok(Server {
            addr,
            stats,
            shutdown,
            wake_tx,
            event_thread: Some(event_thread),
            helper_threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops the server and joins all threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the poll loop; dropping the job channel stops helpers.
        let _ = (&self.wake_tx).write_all(b"q");
        if let Some(t) = self.event_thread.take() {
            let _ = t.join();
        }
        for t in self.helper_threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn helper_main(
    rx: Receiver<Job>,
    tx: Sender<Done>,
    mut notify: UnixStream,
    stats: Arc<ServerStats>,
) {
    // The channel closes when the event loop drops `job_tx` on shutdown.
    while let Ok(job) = rx.recv() {
        stats.helper_jobs.fetch_add(1, Ordering::Relaxed);
        let result = read_file_checked(&job.fs_path);
        if tx
            .send(Done {
                path: job.path,
                result,
            })
            .is_err()
        {
            break;
        }
        let _ = notify.write_all(b".");
    }
}

/// Reads a regular file, refusing directories and anything unreadable.
fn read_file_checked(p: &Path) -> io::Result<Vec<u8>> {
    let meta = std::fs::metadata(p)?;
    if !meta.is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            "not a regular file",
        ));
    }
    std::fs::read(p)
}

#[allow(clippy::too_many_arguments)]
fn event_loop(
    listener: TcpListener,
    mut notify_rx: UnixStream,
    job_tx: Sender<Job>,
    done_rx: Receiver<Done>,
    cfg: NetConfig,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
) {
    let mut cache = ContentCache::new(cfg.cache_bytes);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut waiters: HashMap<String, Vec<usize>> = HashMap::new();
    let mut pending_jobs: HashMap<String, ()> = HashMap::new();

    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Poll set: [listener, notify, conns...].
        let mut fds = Vec::with_capacity(conns.len() + 2);
        fds.push(PollFd::new(listener.as_raw_fd(), POLL_IN));
        fds.push(PollFd::new(notify_rx.as_raw_fd(), POLL_IN));
        let mut fd_conn: Vec<usize> = Vec::with_capacity(conns.len());
        for (i, c) in conns.iter().enumerate() {
            let Some(c) = c else { continue };
            let events = match c.state {
                ConnState::Reading => POLL_IN,
                ConnState::Writing => POLL_OUT,
                ConnState::Waiting => continue,
            };
            fds.push(PollFd::new(c.stream.as_raw_fd(), events));
            fd_conn.push(i);
        }
        // Finite timeout so shutdown is honoured even when fully idle.
        if poll_fds(&mut fds, 100).is_err() {
            continue;
        }
        if fds[0].readable() {
            accept_all(&listener, &mut conns);
        }
        if fds[1].readable() {
            let mut sink = [0u8; 256];
            while matches!(notify_rx.read(&mut sink), Ok(n) if n > 0) {}
            while let Ok(done) = done_rx.try_recv() {
                complete_job(
                    done,
                    &mut cache,
                    &mut conns,
                    &mut waiters,
                    &mut pending_jobs,
                );
            }
        }
        for (slot, fd) in fds[2..].iter().enumerate() {
            let idx = fd_conn[slot];
            if fd.readable() || fd.writable() {
                drive_conn(
                    idx,
                    &mut conns,
                    &mut cache,
                    &mut waiters,
                    &mut pending_jobs,
                    &job_tx,
                    &cfg,
                    &stats,
                );
            }
        }
    }
}

fn accept_all(listener: &TcpListener, conns: &mut Vec<Option<Conn>>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let conn = Conn {
                    stream,
                    parser: flash_http::RequestParser::new(),
                    state: ConnState::Reading,
                    out: std::collections::VecDeque::new(),
                    out_off: 0,
                    keep_alive: false,
                    head_only: false,
                };
                match conns.iter_mut().position(|c| c.is_none()) {
                    Some(i) => conns[i] = Some(conn),
                    None => conns.push(Some(conn)),
                }
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

fn complete_job(
    done: Done,
    cache: &mut ContentCache,
    conns: &mut [Option<Conn>],
    waiters: &mut HashMap<String, Vec<usize>>,
    pending_jobs: &mut HashMap<String, ()>,
) {
    pending_jobs.remove(&done.path);
    let response: Result<Arc<Entry>, (Status, Bytes)> = match done.result {
        Ok(body) => {
            let entry = Entry::build(&done.path, body);
            cache.insert(done.path.clone(), Arc::clone(&entry));
            Ok(entry)
        }
        Err(e) => {
            let status = match e.kind() {
                io::ErrorKind::NotFound => Status::NotFound,
                io::ErrorKind::PermissionDenied => Status::Forbidden,
                _ => Status::InternalError,
            };
            Err((status, Bytes::from(error_body(status))))
        }
    };
    for idx in waiters.remove(&done.path).unwrap_or_default() {
        let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            continue;
        };
        match &response {
            Ok(entry) => queue_entry(conn, entry),
            Err((status, body)) => queue_error(conn, *status, body.clone()),
        }
        conn.state = ConnState::Writing;
    }
}

fn queue_entry(conn: &mut Conn, entry: &Arc<Entry>) {
    let hdr = if conn.keep_alive {
        entry.header_keep.clone()
    } else {
        entry.header_close.clone()
    };
    conn.out.push_back(hdr);
    if !conn.head_only {
        conn.out.push_back(entry.body.clone());
    }
}

fn queue_error(conn: &mut Conn, status: Status, body: Bytes) {
    let hdr = ResponseHeader::build(status, "text/html", body.len() as u64, false, true);
    conn.out.push_back(Bytes::from(hdr.as_bytes().to_vec()));
    if !conn.head_only {
        conn.out.push_back(body);
    }
    conn.keep_alive = false;
}

#[allow(clippy::too_many_arguments)]
fn drive_conn(
    idx: usize,
    conns: &mut [Option<Conn>],
    cache: &mut ContentCache,
    waiters: &mut HashMap<String, Vec<usize>>,
    pending_jobs: &mut HashMap<String, ()>,
    job_tx: &Sender<Job>,
    cfg: &NetConfig,
    stats: &ServerStats,
) {
    let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
        return;
    };
    loop {
        match conn.state {
            ConnState::Reading => {
                let mut buf = [0u8; 4096];
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conns[idx] = None;
                        return;
                    }
                    Ok(n) => match conn.parser.feed(&buf[..n]) {
                        ParseStatus::Done(req) => {
                            handle_request(
                                idx,
                                conn,
                                req,
                                cache,
                                waiters,
                                pending_jobs,
                                job_tx,
                                cfg,
                                stats,
                            );
                            if matches!(conn.state, ConnState::Waiting) {
                                return;
                            }
                        }
                        ParseStatus::Incomplete => {}
                        ParseStatus::Error(_) => {
                            let body = Bytes::from(error_body(Status::BadRequest));
                            queue_error(conn, Status::BadRequest, body);
                            conn.state = ConnState::Writing;
                        }
                    },
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(_) => {
                        conns[idx] = None;
                        return;
                    }
                }
            }
            ConnState::Writing => {
                while let Some(front) = conn.out.front() {
                    match conn.stream.write(&front[conn.out_off..]) {
                        Ok(n) => {
                            conn.out_off += n;
                            if conn.out_off == front.len() {
                                conn.out.pop_front();
                                conn.out_off = 0;
                            }
                        }
                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                        Err(_) => {
                            conns[idx] = None;
                            return;
                        }
                    }
                }
                // Response fully flushed.
                stats.requests.fetch_add(1, Ordering::Relaxed);
                if conn.keep_alive {
                    conn.state = ConnState::Reading;
                } else {
                    conns[idx] = None;
                    return;
                }
            }
            ConnState::Waiting => return,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_request(
    idx: usize,
    conn: &mut Conn,
    req: Request,
    cache: &mut ContentCache,
    waiters: &mut HashMap<String, Vec<usize>>,
    pending_jobs: &mut HashMap<String, ()>,
    job_tx: &Sender<Job>,
    cfg: &NetConfig,
    stats: &ServerStats,
) {
    conn.keep_alive = req.keep_alive();
    conn.head_only = req.method == Method::Head;
    if req.method == Method::Post {
        let body = Bytes::from(error_body(Status::NotImplemented));
        queue_error(conn, Status::NotImplemented, body);
        conn.state = ConnState::Writing;
        return;
    }
    let mut path = req.path.clone();
    if path.ends_with('/') {
        path.push_str("index.html");
    }
    if let Some(entry) = cache.get(&path) {
        stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        queue_entry(conn, &entry);
        conn.state = ConnState::Writing;
        return;
    }
    // Miss: hand the disk work to a helper; coalesce concurrent misses.
    // The request parser has already normalized away any `..`, so joining
    // the relative remainder cannot escape the docroot.
    let fs_path = cfg.docroot.join(path.trim_start_matches('/'));
    waiters.entry(path.clone()).or_default().push(idx);
    if pending_jobs.insert(path.clone(), ()).is_none() {
        let _ = job_tx.send(Job { path, fs_path });
    }
    conn.state = ConnState::Waiting;
}
