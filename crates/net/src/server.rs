//! The real AMPED web server, sharded across cores: N independent
//! `poll(2)` event loops (one per core by default, capped at 8), each
//! a faithful copy of the paper's single-process architecture
//! (§3.4, §5), plus a shared helper pool for disk I/O.
//!
//! Layout:
//!
//! * a **lightweight acceptor thread** owns the listening socket and
//!   deals accepted connections round-robin to the shards over
//!   per-shard channels, waking the target shard through its wake
//!   socketpair;
//! * each **shard** is the paper's event loop verbatim: it multiplexes
//!   its connections with `poll(2)`, never touches the filesystem, and
//!   owns a private [`ContentCache`] — no cross-shard locking anywhere
//!   on the request path;
//! * the **helper pool** is shared (disk parallelism is a global
//!   resource): a miss enqueues a job tagged with its shard, and the
//!   finishing helper routes the completion back to that shard's done
//!   queue, coalescing wake-up bytes so a burst of completions costs
//!   one pipe write, not one per job;
//! * the send path is **two-tier and zero-copy at both tiers**: small
//!   bodies are queued as their cached header and body segments and
//!   transmitted with a single gathered `writev(2)` (see
//!   [`crate::writev`]), with partial-write resumption tracked across
//!   segment boundaries; bodies above
//!   [`NetConfig::sendfile_threshold_bytes`] never enter the content
//!   cache at all — the helper hands the shard an open fd, the shard
//!   sends the header with `writev` and the body with `sendfile(2)`
//!   (see [`crate::sendfile`]) straight from the kernel page cache,
//!   resuming partial sends from the same per-connection state.
//!
//! With `event_loops = 1` the behavior is byte-identical to the
//! original single-loop server; with N shards the same architecture
//! simply runs N times, the way per-core executor designs scale a
//! uniprocessor event loop.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use flash_http::request::{ParseStatus, Request};
use flash_http::response::{error_body, ResponseHeader, Status};
use flash_http::Method;

use crate::cache::{ContentCache, Entry};
use crate::poll::{poll_fds, PollFd, POLL_IN, POLL_OUT};
use crate::sendfile::send_file;
use crate::writev::{writev_fd, MAX_IOV};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Directory served as the document root.
    pub docroot: PathBuf,
    /// Number of helper threads (the AMPED helper pool, shared by all
    /// shards).
    pub helpers: usize,
    /// Total content-cache capacity in bytes, divided evenly among the
    /// shards.
    pub cache_bytes: u64,
    /// Number of independent event-loop shards. Default:
    /// `min(available cores, 8)`.
    pub event_loops: usize,
    /// Bodies strictly larger than this bypass the content cache and
    /// are served from the kernel page cache with `sendfile(2)` (see
    /// [`crate::sendfile`]). Default 256 KiB — roughly where the cost
    /// of one more copy through userspace overtakes the cost of the
    /// extra syscall, and past the sweet spot of cache residency.
    pub sendfile_threshold_bytes: u64,
}

impl NetConfig {
    /// A config serving `docroot` with sensible defaults.
    pub fn new(docroot: impl Into<PathBuf>) -> Self {
        NetConfig {
            docroot: docroot.into(),
            helpers: 4,
            cache_bytes: 64 * 1024 * 1024,
            event_loops: default_event_loops(),
            sendfile_threshold_bytes: 256 * 1024,
        }
    }

    /// Same config pinned to `n` event-loop shards.
    pub fn with_event_loops(mut self, n: usize) -> Self {
        self.event_loops = n.max(1);
        self
    }

    /// Same config with the large-body cutover at `bytes`.
    pub fn with_sendfile_threshold(mut self, bytes: u64) -> Self {
        self.sendfile_threshold_bytes = bytes;
        self
    }
}

/// `min(available cores, 8)` — beyond 8 loops the acceptor itself
/// becomes the bottleneck before the loops do.
pub fn default_event_loops() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Live counters for one event-loop shard.
#[derive(Debug, Default)]
pub struct ShardStats {
    /// Completed responses (any status).
    pub requests: AtomicU64,
    /// Connections dealt to this shard by the acceptor.
    pub accepted: AtomicU64,
    /// Jobs this shard dispatched to the helper pool (content-cache
    /// misses, after coalescing).
    pub helper_jobs: AtomicU64,
    /// Responses served from this shard's content cache.
    pub cache_hits: AtomicU64,
    /// Gathered `writev(2)` calls issued on the send path.
    pub writev_calls: AtomicU64,
    /// `sendfile(2)` calls issued on the large-body path.
    pub sendfile_calls: AtomicU64,
    /// Body bytes transmitted via `sendfile(2)` (page cache → socket,
    /// never through userspace).
    pub bytes_sendfile: AtomicU64,
    /// Gauge: bytes currently resident in this shard's content cache
    /// (refreshed after every insert).
    pub cache_used_bytes: AtomicU64,
}

/// Counters for a running server: per-shard atomics, aggregated on
/// read so the hot path never contends on a shared cacheline.
#[derive(Debug)]
pub struct ServerStats {
    shards: Vec<Arc<ShardStats>>,
}

impl ServerStats {
    fn sum(&self, f: impl Fn(&ShardStats) -> &AtomicU64) -> u64 {
        self.shards
            .iter()
            .map(|s| f(s).load(Ordering::Relaxed))
            .sum()
    }

    /// Completed responses across all shards.
    pub fn requests(&self) -> u64 {
        self.sum(|s| &s.requests)
    }

    /// Connections accepted across all shards.
    pub fn accepted(&self) -> u64 {
        self.sum(|s| &s.accepted)
    }

    /// Helper jobs dispatched across all shards.
    pub fn helper_jobs(&self) -> u64 {
        self.sum(|s| &s.helper_jobs)
    }

    /// Content-cache hits across all shards.
    pub fn cache_hits(&self) -> u64 {
        self.sum(|s| &s.cache_hits)
    }

    /// Gathered writes issued across all shards.
    pub fn writev_calls(&self) -> u64 {
        self.sum(|s| &s.writev_calls)
    }

    /// `sendfile(2)` calls issued across all shards.
    pub fn sendfile_calls(&self) -> u64 {
        self.sum(|s| &s.sendfile_calls)
    }

    /// Body bytes served via `sendfile(2)` across all shards.
    pub fn bytes_sendfile(&self) -> u64 {
        self.sum(|s| &s.bytes_sendfile)
    }

    /// Bytes currently resident in the content caches, summed over
    /// shards. Large-body responses must leave this untouched.
    pub fn cache_used_bytes(&self) -> u64 {
        self.sum(|s| &s.cache_used_bytes)
    }

    /// The per-shard counters (index = shard id).
    pub fn per_shard(&self) -> &[Arc<ShardStats>] {
        &self.shards
    }
}

/// Handle to a running server; dropping it does **not** stop the server —
/// call [`Server::stop`].
pub struct Server {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    shard_wakes: Vec<WakeHandle>,
    acceptor_thread: Option<JoinHandle<()>>,
    shard_threads: Vec<JoinHandle<()>>,
    helper_threads: Vec<JoinHandle<()>>,
}

/// The write side of a shard's wake socketpair, with a coalescing
/// flag: a producer writes the wake byte only when it is the first to
/// make the shard's work queues non-empty since the shard last
/// drained, so a burst of completions floods neither the pipe nor the
/// shard's poll loop.
#[derive(Clone)]
struct WakeHandle {
    tx: Arc<UnixStream>,
    pending: Arc<AtomicBool>,
}

impl WakeHandle {
    fn new(tx: UnixStream) -> Self {
        WakeHandle {
            tx: Arc::new(tx),
            pending: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Wakes the shard unless a wake is already pending.
    fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            let _ = (&*self.tx).write_all(b".");
        }
    }

    /// Unconditional wake (shutdown path — must never be elided).
    fn wake_force(&self) {
        let _ = (&*self.tx).write_all(b"q");
    }
}

struct Job {
    path: String,
    fs_path: PathBuf,
    /// Which shard's done queue the completion routes back to.
    shard: usize,
}

/// What a helper hands back for a readable file: either the bytes
/// themselves (small file, destined for the content cache) or an open
/// descriptor plus its stat'ed length (large file, destined for the
/// `sendfile` path — the shard never sees the body at all).
enum FileData {
    Bytes(Vec<u8>),
    Fd { file: Arc<File>, len: u64 },
}

struct Done {
    path: String,
    result: io::Result<FileData>,
}

enum ConnState {
    Reading,
    Waiting,
    Writing,
}

/// Large-body transmission state: everything `sendfile(2)` needs to
/// resume after a partial send, tracked per connection alongside
/// `out`/`out_off`. The `File` is shared (`Arc`) among every
/// connection currently streaming the same body — explicit offsets
/// mean the kernel never touches the shared cursor.
struct SendFileState {
    file: Arc<File>,
    offset: u64,
    remaining: u64,
}

struct Conn {
    stream: TcpStream,
    parser: flash_http::RequestParser,
    state: ConnState,
    /// Response segments pending transmission (header, body, ...) —
    /// drained with gathered writes, never copied into one buffer.
    out: VecDeque<Bytes>,
    /// Bytes of `out.front()` already transmitted.
    out_off: usize,
    /// Large body pending transmission via `sendfile(2)`, sent after
    /// `out` drains (the header always precedes the file bytes).
    sendfile: Option<SendFileState>,
    keep_alive: bool,
    head_only: bool,
}

impl Server {
    /// Binds `addr` and starts the acceptor, the event-loop shards and
    /// the shared helper pool.
    pub fn start(addr: impl ToSocketAddrs, cfg: NetConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let n_shards = cfg.event_loops.max(1);

        let shard_stats: Vec<Arc<ShardStats>> = (0..n_shards)
            .map(|_| Arc::new(ShardStats::default()))
            .collect();
        let stats = Arc::new(ServerStats {
            shards: shard_stats.clone(),
        });

        // One shared job queue feeding the helper pool; per-shard done
        // queues and wake pipes routing completions back.
        let (job_tx, job_rx) = unbounded::<Job>();
        let mut conn_txs = Vec::with_capacity(n_shards);
        let mut done_txs = Vec::with_capacity(n_shards);
        let mut shard_wakes = Vec::with_capacity(n_shards);
        let mut shard_threads = Vec::with_capacity(n_shards);
        let mut shard_setups = Vec::with_capacity(n_shards);
        for shard_id in 0..n_shards {
            let (conn_tx, conn_rx) = unbounded::<TcpStream>();
            let (done_tx, done_rx) = unbounded::<Done>();
            let (wake_tx, wake_rx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            let wake = WakeHandle::new(wake_tx);
            conn_txs.push(conn_tx);
            done_txs.push(done_tx);
            shard_wakes.push(wake.clone());
            shard_setups.push((shard_id, conn_rx, done_rx, wake_rx, wake));
        }

        let mut helper_threads = Vec::new();
        for i in 0..cfg.helpers.max(1) {
            let rx = job_rx.clone();
            let txs = done_txs.clone();
            let wakes = shard_wakes.clone();
            let threshold = cfg.sendfile_threshold_bytes;
            helper_threads.push(
                std::thread::Builder::new()
                    .name(format!("flash-helper-{i}"))
                    .spawn(move || helper_main(rx, txs, wakes, threshold))?,
            );
        }
        drop(done_txs);
        drop(job_rx);

        // Each shard gets an equal slice of the cache budget: private
        // caches mean zero lock traffic at the cost of N-way
        // duplication of the hottest entries.
        let shard_cache_bytes = (cfg.cache_bytes / n_shards as u64).max(1);
        for (shard_id, conn_rx, done_rx, wake_rx, wake) in shard_setups {
            let ctx = ShardCtx {
                shard: shard_id,
                cache: ContentCache::new(shard_cache_bytes),
                waiters: HashMap::new(),
                pending_jobs: HashSet::new(),
                job_tx: job_tx.clone(),
                cfg: cfg.clone(),
                stats: Arc::clone(&shard_stats[shard_id]),
            };
            let shutdown2 = Arc::clone(&shutdown);
            shard_threads.push(
                std::thread::Builder::new()
                    .name(format!("flash-shard-{shard_id}"))
                    .spawn(move || shard_loop(ctx, conn_rx, done_rx, wake_rx, wake, shutdown2))?,
            );
        }
        drop(job_tx);

        let shutdown2 = Arc::clone(&shutdown);
        let accept_stats = shard_stats.clone();
        let acceptor_wakes = shard_wakes.clone();
        let acceptor_thread = std::thread::Builder::new()
            .name("flash-acceptor".into())
            .spawn(move || {
                acceptor_loop(listener, conn_txs, acceptor_wakes, accept_stats, shutdown2)
            })?;

        Ok(Server {
            addr,
            stats,
            shutdown,
            shard_wakes,
            acceptor_thread: Some(acceptor_thread),
            shard_threads,
            helper_threads,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters, aggregated over shards on read.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Stops the server and joins all threads.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for wake in &self.shard_wakes {
            wake.wake_force();
        }
        if let Some(t) = self.acceptor_thread.take() {
            let _ = t.join();
        }
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.helper_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Accepts connections and deals them round-robin to the shards.
fn acceptor_loop(
    listener: TcpListener,
    conn_txs: Vec<Sender<TcpStream>>,
    wakes: Vec<WakeHandle>,
    stats: Vec<Arc<ShardStats>>,
    shutdown: Arc<AtomicBool>,
) {
    let mut next = 0usize;
    let mut fds = [PollFd::new(listener.as_raw_fd(), POLL_IN)];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Finite timeout so shutdown is honoured even when fully idle.
        fds[0].revents = 0;
        if poll_fds(&mut fds, 100).is_err() || !fds[0].readable() {
            continue;
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // One gathered write per response makes Nagle
                    // pointless; disabling it removes the delayed-ACK
                    // interaction on keep-alive connections.
                    let _ = stream.set_nodelay(true);
                    if conn_txs[next].send(stream).is_ok() {
                        stats[next].accepted.fetch_add(1, Ordering::Relaxed);
                        wakes[next].wake();
                    }
                    next = (next + 1) % conn_txs.len();
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    // Persistent failures (EMFILE/ENFILE under fd
                    // exhaustion) leave the listener readable, so
                    // without a pause this dedicated thread would spin
                    // a full core retrying a doomed accept.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    break;
                }
            }
        }
    }
}

/// Shared helper pool: executes disk opens/reads and routes each
/// completion back to the shard that requested it. Bodies above
/// `sendfile_threshold` come back as an owned fd + length instead of
/// bytes, so a multi-gigabyte file never materializes in helper
/// memory.
fn helper_main(
    rx: Receiver<Job>,
    done_txs: Vec<Sender<Done>>,
    wakes: Vec<WakeHandle>,
    sendfile_threshold: u64,
) {
    // The channel closes when every shard has dropped its job sender.
    while let Ok(job) = rx.recv() {
        let result = load_file_checked(&job.fs_path, sendfile_threshold);
        let shard = job.shard;
        if done_txs[shard]
            .send(Done {
                path: job.path,
                result,
            })
            .is_err()
        {
            continue;
        }
        wakes[shard].wake();
    }
}

/// Opens a regular file and decides its serving tier, refusing
/// directories and anything unreadable.
///
/// The file is opened *first* and everything after that — the
/// regular-file check, the length, the bytes read or the fd handed
/// out — comes from the open descriptor (`fstat` semantics). The old
/// `fs::metadata` + `fs::read` pair raced with path swaps: the
/// metadata could describe one inode and the read return another.
fn load_file_checked(p: &Path, sendfile_threshold: u64) -> io::Result<FileData> {
    let file = File::open(p)?;
    let meta = file.metadata()?; // fstat on the open fd — no second path lookup
    if !meta.is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            "not a regular file",
        ));
    }
    let len = meta.len();
    if len > sendfile_threshold {
        return Ok(FileData::Fd {
            file: Arc::new(file),
            len,
        });
    }
    let mut body = Vec::with_capacity(len as usize);
    (&file).read_to_end(&mut body)?;
    Ok(FileData::Bytes(body))
}

/// Everything one shard owns: its cache, its miss-coalescing state,
/// its statistics, and its link to the helper pool.
struct ShardCtx {
    shard: usize,
    cache: ContentCache,
    waiters: HashMap<String, Vec<usize>>,
    pending_jobs: HashSet<String>,
    job_tx: Sender<Job>,
    cfg: NetConfig,
    stats: Arc<ShardStats>,
}

/// One event-loop shard: the paper's AMPED loop, verbatim, over this
/// shard's private connection set.
fn shard_loop(
    mut ctx: ShardCtx,
    conn_rx: Receiver<TcpStream>,
    done_rx: Receiver<Done>,
    mut wake_rx: UnixStream,
    wake: WakeHandle,
    shutdown: Arc<AtomicBool>,
) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    // Persistent poll-set buffers, reused every iteration (cleared,
    // never reallocated once grown).
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_conn: Vec<usize> = Vec::new();

    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Poll set: [wake pipe, conns...].
        fds.clear();
        fd_conn.clear();
        fds.push(PollFd::new(wake_rx.as_raw_fd(), POLL_IN));
        for (i, c) in conns.iter().enumerate() {
            let Some(c) = c else { continue };
            let events = match c.state {
                ConnState::Reading => POLL_IN,
                ConnState::Writing => POLL_OUT,
                ConnState::Waiting => continue,
            };
            fds.push(PollFd::new(c.stream.as_raw_fd(), events));
            fd_conn.push(i);
        }
        // Poll with a 1 s cap: every producer (acceptor, helpers,
        // stop()) wakes this shard through the pipe, so the cap is
        // never the steady-state latency — it only bounds how long a
        // lost wake could stall the loop. Idle shards cost one wakeup
        // per second, not a spinning core.
        if poll_fds(&mut fds, 1000).is_err() {
            continue;
        }
        if fds[0].readable() {
            let mut sink = [0u8; 256];
            while matches!(wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            // Clear the coalescing flag *before* draining the queues:
            // anything enqueued after this point writes a fresh wake
            // byte, so completions cannot be lost.
            wake.pending.store(false, Ordering::Release);
            while let Ok(stream) = conn_rx.try_recv() {
                let conn = Conn {
                    stream,
                    parser: flash_http::RequestParser::new(),
                    state: ConnState::Reading,
                    out: VecDeque::new(),
                    out_off: 0,
                    sendfile: None,
                    keep_alive: false,
                    head_only: false,
                };
                let idx = match conns.iter_mut().position(|c| c.is_none()) {
                    Some(i) => {
                        conns[i] = Some(conn);
                        i
                    }
                    None => {
                        conns.push(Some(conn));
                        conns.len() - 1
                    }
                };
                // A freshly dealt connection usually has its request
                // bytes in flight already; drive it immediately rather
                // than waiting for the next poll round.
                drive_conn(idx, &mut conns, &mut ctx);
            }
            while let Ok(done) = done_rx.try_recv() {
                complete_job(done, &mut conns, &mut ctx);
            }
        }
        for (slot, fd) in fds[1..].iter().enumerate() {
            let idx = fd_conn[slot];
            if !(fd.readable() || fd.writable()) {
                continue;
            }
            // The wake-pipe drain above ran `drive_conn` for fresh
            // connections and completions, which can close a
            // connection and let its `conns` slot be reused by a new
            // stream — with a recycled kernel fd number, even. The
            // poll result in hand describes the *old* stream, so only
            // drive the slot if it still holds the exact fd we polled.
            let live = conns
                .get(idx)
                .and_then(|c| c.as_ref())
                .is_some_and(|c| c.stream.as_raw_fd() == fd.fd);
            if live {
                drive_conn(idx, &mut conns, &mut ctx);
            }
        }
    }
}

/// A finished helper job, rendered into whatever each waiting
/// connection needs queued.
enum Completion {
    /// Small body: a cached (or at least cacheable) in-memory entry.
    Small(Arc<Entry>),
    /// Large body: a shared fd for `sendfile`, with both header forms
    /// pre-rendered once for the whole waiter list.
    Large {
        file: Arc<File>,
        len: u64,
        header_keep: Bytes,
        header_close: Bytes,
    },
    Fail(Status, Bytes),
}

fn complete_job(done: Done, conns: &mut [Option<Conn>], ctx: &mut ShardCtx) {
    ctx.pending_jobs.remove(&done.path);
    let completion = match done.result {
        Ok(FileData::Bytes(body)) => {
            let entry = Entry::build(&done.path, body);
            // Oversized-for-this-cache entries are refused by the
            // admission check; the waiters below are still served from
            // the entry directly.
            ctx.cache.insert(done.path.clone(), Arc::clone(&entry));
            ctx.stats
                .cache_used_bytes
                .store(ctx.cache.used_bytes(), Ordering::Relaxed);
            Completion::Small(entry)
        }
        Ok(FileData::Fd { file, len }) => {
            let (header_keep, header_close) = crate::cache::header_pair(&done.path, len);
            Completion::Large {
                file,
                len,
                header_keep,
                header_close,
            }
        }
        Err(e) => {
            let status = match e.kind() {
                io::ErrorKind::NotFound => Status::NotFound,
                io::ErrorKind::PermissionDenied => Status::Forbidden,
                _ => Status::InternalError,
            };
            Completion::Fail(status, Bytes::from(error_body(status)))
        }
    };
    for idx in ctx.waiters.remove(&done.path).unwrap_or_default() {
        let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            continue;
        };
        match &completion {
            Completion::Small(entry) => queue_entry(conn, entry),
            Completion::Large {
                file,
                len,
                header_keep,
                header_close,
            } => queue_sendfile(conn, file, *len, header_keep, header_close),
            Completion::Fail(status, body) => queue_error(conn, *status, body.clone()),
        }
        conn.state = ConnState::Writing;
    }
}

fn queue_entry(conn: &mut Conn, entry: &Arc<Entry>) {
    let hdr = if conn.keep_alive {
        entry.header_keep.clone()
    } else {
        entry.header_close.clone()
    };
    conn.out.push_back(hdr);
    if !conn.head_only {
        conn.out.push_back(entry.body.clone());
    }
}

/// Queues a large-body response: the pre-rendered header goes through
/// the ordinary `writev` queue; the body rides as a [`SendFileState`]
/// transmitted after the queue drains. HEAD gets the header (with the
/// true `Content-Length`) and no file state at all.
fn queue_sendfile(conn: &mut Conn, file: &Arc<File>, len: u64, keep: &Bytes, close: &Bytes) {
    let hdr = if conn.keep_alive { keep } else { close };
    conn.out.push_back(hdr.clone());
    if !conn.head_only {
        conn.sendfile = Some(SendFileState {
            file: Arc::clone(file),
            offset: 0,
            remaining: len,
        });
    }
}

fn queue_error(conn: &mut Conn, status: Status, body: Bytes) {
    let hdr = ResponseHeader::build(status, "text/html", body.len() as u64, false, true);
    conn.out.push_back(Bytes::from(hdr.as_bytes().to_vec()));
    if !conn.head_only {
        conn.out.push_back(body);
    }
    conn.keep_alive = false;
}

/// Collects up to [`MAX_IOV`] non-empty segment views starting at
/// `out_off` into `bufs`; returns the number collected.
fn gather_out<'a>(
    out: &'a VecDeque<Bytes>,
    out_off: usize,
    bufs: &mut [&'a [u8]; MAX_IOV],
) -> usize {
    let mut cnt = 0;
    for (i, seg) in out.iter().enumerate() {
        if cnt == MAX_IOV {
            break;
        }
        let view = if i == 0 { &seg[out_off..] } else { &seg[..] };
        if !view.is_empty() {
            bufs[cnt] = view;
            cnt += 1;
        }
    }
    cnt
}

/// Consumes `n` transmitted bytes from the front of the queue,
/// tracking resumption across segment boundaries and discarding
/// zero-length segments.
fn advance_out(out: &mut VecDeque<Bytes>, out_off: &mut usize, mut n: usize) {
    while let Some(front) = out.front() {
        let remaining = front.len() - *out_off;
        if n >= remaining {
            n -= remaining;
            out.pop_front();
            *out_off = 0;
            // Keep popping: this also clears zero-length segments so
            // the queue can never stall on an empty front.
            if n == 0 && out.front().is_some_and(|f| !f.is_empty()) {
                break;
            }
        } else {
            *out_off += n;
            break;
        }
    }
    debug_assert!(out.front().is_none() || out.front().is_some_and(|f| *out_off < f.len()));
}

/// Outcome of one attempt to flush a connection's output queue.
enum FlushResult {
    /// Everything queued was transmitted.
    Flushed,
    /// The socket backpressured; retry when writable.
    WouldBlock,
    /// The connection is dead.
    Error,
}

/// Drains `conn.out` with gathered writes — the happy path (cached
/// header + body fitting the socket buffer) is exactly one `writev` —
/// then streams any pending large body with `sendfile(2)`.
fn flush_out(conn: &mut Conn, stats: &ShardStats) -> FlushResult {
    while !conn.out.is_empty() {
        let mut bufs: [&[u8]; MAX_IOV] = [&[]; MAX_IOV];
        let cnt = gather_out(&conn.out, conn.out_off, &mut bufs);
        if cnt == 0 {
            // Only zero-length segments remain (e.g. an empty file's
            // body): discard them without a syscall.
            conn.out.clear();
            conn.out_off = 0;
            break;
        }
        match writev_fd(conn.stream.as_raw_fd(), &bufs[..cnt]) {
            Ok(n) => {
                stats.writev_calls.fetch_add(1, Ordering::Relaxed);
                advance_out(&mut conn.out, &mut conn.out_off, n);
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return FlushResult::WouldBlock,
            Err(_) => return FlushResult::Error,
        }
    }
    // Header out; now the body, page cache → socket. On backpressure
    // the state (offset/remaining) goes back on the connection and the
    // poll loop retries when the socket is writable again.
    //
    // Fairness: a fast consumer of a huge file could keep `send_file`
    // succeeding for seconds, monopolizing the shard's event loop. A
    // per-visit byte budget bounds each connection's turn; an
    // exhausted budget reports WouldBlock, so the connection rejoins
    // the poll set (its socket is writable, so it is re-driven next
    // iteration) and every other connection gets serviced in between.
    const SENDFILE_VISIT_BUDGET: u64 = 1024 * 1024;
    if let Some(mut sf) = conn.sendfile.take() {
        let fd = conn.stream.as_raw_fd();
        let mut budget = SENDFILE_VISIT_BUDGET;
        while sf.remaining > 0 {
            if budget == 0 {
                conn.sendfile = Some(sf);
                return FlushResult::WouldBlock;
            }
            match send_file(fd, &sf.file, &mut sf.offset, sf.remaining.min(budget)) {
                // The file shrank after fstat: the promised
                // Content-Length can no longer be honoured, so the
                // only correct HTTP/1.x signal is a dropped connection.
                Ok(0) => return FlushResult::Error,
                Ok(n) => {
                    stats.sendfile_calls.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_sendfile.fetch_add(n as u64, Ordering::Relaxed);
                    sf.remaining -= n as u64;
                    budget -= n as u64;
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                    conn.sendfile = Some(sf);
                    return FlushResult::WouldBlock;
                }
                Err(_) => return FlushResult::Error,
            }
        }
    }
    FlushResult::Flushed
}

/// Runs one connection's state machine as far as it will go without
/// blocking.
fn drive_conn(idx: usize, conns: &mut [Option<Conn>], ctx: &mut ShardCtx) {
    loop {
        let Some(conn) = conns.get_mut(idx).and_then(|c| c.as_mut()) else {
            return;
        };
        match conn.state {
            ConnState::Reading => {
                // Serve any request already buffered (keep-alive
                // pipelining) before asking the socket for more.
                match conn.parser.feed(&[]) {
                    ParseStatus::Done(req) => {
                        handle_request(idx, conn, req, ctx);
                        if matches!(conn.state, ConnState::Waiting) {
                            return;
                        }
                        continue;
                    }
                    ParseStatus::Error(_) => {
                        let body = Bytes::from(error_body(Status::BadRequest));
                        queue_error(conn, Status::BadRequest, body);
                        conn.state = ConnState::Writing;
                        continue;
                    }
                    ParseStatus::Incomplete => {}
                }
                let mut buf = [0u8; 4096];
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conns[idx] = None;
                        return;
                    }
                    Ok(n) => match conn.parser.feed(&buf[..n]) {
                        ParseStatus::Done(req) => {
                            handle_request(idx, conn, req, ctx);
                            if matches!(conn.state, ConnState::Waiting) {
                                return;
                            }
                        }
                        ParseStatus::Incomplete => {}
                        ParseStatus::Error(_) => {
                            let body = Bytes::from(error_body(Status::BadRequest));
                            queue_error(conn, Status::BadRequest, body);
                            conn.state = ConnState::Writing;
                        }
                    },
                    Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                    Err(_) => {
                        conns[idx] = None;
                        return;
                    }
                }
            }
            ConnState::Writing => match flush_out(conn, &ctx.stats) {
                FlushResult::Flushed => {
                    ctx.stats.requests.fetch_add(1, Ordering::Relaxed);
                    if conn.keep_alive {
                        conn.state = ConnState::Reading;
                    } else {
                        conns[idx] = None;
                        return;
                    }
                }
                FlushResult::WouldBlock => return,
                FlushResult::Error => {
                    conns[idx] = None;
                    return;
                }
            },
            ConnState::Waiting => return,
        }
    }
}

fn handle_request(idx: usize, conn: &mut Conn, req: Request, ctx: &mut ShardCtx) {
    conn.keep_alive = req.keep_alive();
    conn.head_only = req.method == Method::Head;
    if req.method == Method::Post {
        let body = Bytes::from(error_body(Status::NotImplemented));
        queue_error(conn, Status::NotImplemented, body);
        conn.state = ConnState::Writing;
        return;
    }
    let mut path = req.path.clone();
    if path.ends_with('/') {
        path.push_str("index.html");
    }
    if let Some(entry) = ctx.cache.get(&path) {
        ctx.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        queue_entry(conn, &entry);
        conn.state = ConnState::Writing;
        return;
    }
    // Miss: hand the disk work to a helper; coalesce concurrent misses.
    // The request parser has already normalized away any `..`, so joining
    // the relative remainder cannot escape the docroot.
    let fs_path = ctx.cfg.docroot.join(path.trim_start_matches('/'));
    ctx.waiters.entry(path.clone()).or_default().push(idx);
    if ctx.pending_jobs.insert(path.clone()) {
        ctx.stats.helper_jobs.fetch_add(1, Ordering::Relaxed);
        let _ = ctx.job_tx.send(Job {
            path,
            fs_path,
            shard: ctx.shard,
        });
    }
    conn.state = ConnState::Waiting;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bytes_of(s: &str) -> Bytes {
        Bytes::from(s.as_bytes().to_vec())
    }

    /// Simulates a sink that accepts `k` bytes per call against the
    /// gather/advance pair, verifying the reassembled stream is exact
    /// no matter where partial writes land — including mid-iovec.
    fn drain_with_chunk_size(segments: &[&str], k: usize) -> Vec<u8> {
        let mut out: VecDeque<Bytes> = segments.iter().map(|s| bytes_of(s)).collect();
        let mut out_off = 0usize;
        let mut sink = Vec::new();
        let mut guard = 0;
        while !out.is_empty() {
            let mut bufs: [&[u8]; MAX_IOV] = [&[]; MAX_IOV];
            let cnt = gather_out(&out, out_off, &mut bufs);
            if cnt == 0 {
                out.clear();
                break;
            }
            let total: usize = bufs[..cnt].iter().map(|b| b.len()).sum();
            let n = k.min(total);
            let mut left = n;
            for b in &bufs[..cnt] {
                let take = left.min(b.len());
                sink.extend_from_slice(&b[..take]);
                left -= take;
                if left == 0 {
                    break;
                }
            }
            advance_out(&mut out, &mut out_off, n);
            guard += 1;
            assert!(guard < 10_000, "drain must terminate");
        }
        sink
    }

    #[test]
    fn partial_write_resumption_is_byte_exact_for_every_split() {
        let segments = [
            "HEADER-32-bytes-of-padding-data!",
            "body: hello world",
            "",
            "tail",
        ];
        let expect: Vec<u8> = segments.concat().into_bytes();
        // Every chunk size from 1 byte (worst case: every write lands
        // mid-iovec) to larger than the whole queue.
        for k in 1..expect.len() + 4 {
            let got = drain_with_chunk_size(&segments, k);
            assert_eq!(got, expect, "chunk size {k}");
        }
    }

    #[test]
    fn advance_out_discards_empty_segments() {
        let mut out: VecDeque<Bytes> = [bytes_of(""), bytes_of(""), bytes_of("x")]
            .into_iter()
            .collect();
        let mut off = 0;
        advance_out(&mut out, &mut off, 0);
        assert_eq!(out.len(), 1, "empty fronts must be popped");
        assert_eq!(&out[0][..], b"x");
        advance_out(&mut out, &mut off, 1);
        assert!(out.is_empty());
        assert_eq!(off, 0);
    }

    #[test]
    fn gather_out_skips_empties_and_respects_offset() {
        let out: VecDeque<Bytes> = [bytes_of("abcdef"), bytes_of(""), bytes_of("gh")]
            .into_iter()
            .collect();
        let mut bufs: [&[u8]; MAX_IOV] = [&[]; MAX_IOV];
        let cnt = gather_out(&out, 4, &mut bufs);
        assert_eq!(cnt, 2);
        assert_eq!(bufs[0], b"ef");
        assert_eq!(bufs[1], b"gh");
    }

    #[test]
    fn default_event_loops_bounded() {
        let n = default_event_loops();
        assert!((1..=8).contains(&n));
    }
}
