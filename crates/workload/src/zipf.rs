//! Zipf-distributed popularity sampling.
//!
//! Web-request popularity is famously Zipf-like (Arlitt & Williamson,
//! SIGMETRICS'96 — the paper's reference 2): the i-th most popular
//! document receives traffic proportional to `1 / i^alpha`. The sampler
//! precomputes the CDF once and draws in O(log n).

use flash_simcore::SimRng;

/// A sampler over ranks `0..n` with probability ∝ `1/(rank+1)^alpha`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler for `n` items with skew `alpha` (0 = uniform;
    /// web workloads are typically 0.6–1.0).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf over zero items");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the distribution is over a single item.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `i` (for tests).
    pub fn mass(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_in_range() {
        let z = Zipf::new(100, 0.8);
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn head_is_hotter_than_tail() {
        let z = Zipf::new(1000, 0.8);
        let mut rng = SimRng::new(2);
        let mut head = 0;
        let mut tail = 0;
        for _ in 0..20_000 {
            let r = z.sample(&mut rng);
            if r < 100 {
                head += 1;
            }
            if r >= 900 {
                tail += 1;
            }
        }
        assert!(
            head > tail * 5,
            "head {head} should dominate tail {tail} at alpha=0.8"
        );
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.mass(i) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_alpha_is_more_skewed() {
        let lo = Zipf::new(100, 0.4);
        let hi = Zipf::new(100, 1.2);
        assert!(hi.mass(0) > lo.mass(0) * 2.0);
    }

    #[test]
    fn single_item_always_rank_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn mass_sums_to_one() {
        let z = Zipf::new(50, 0.9);
        let total: f64 = (0..50).map(|i| z.mass(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
