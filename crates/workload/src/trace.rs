//! Trace workloads: the paper's CS / Owlnet / ECE logs, synthesized.
//!
//! The original Rice University access logs are not public. Each preset
//! reproduces the properties the paper's analysis depends on:
//!
//! * **CS** (§6.2, Fig. 8): departmental server, large dataset (exceeds
//!   the 128 MB server memory → disk-bound), larger average transfers.
//! * **Owlnet** (§6.2, Fig. 8): student-pages server, smaller dataset
//!   (fits in cache → high locality), smaller average transfers.
//! * **ECE** (§6.2, Figs. 9/10/12): used truncated to a target dataset
//!   size, exactly like the paper ("we use the access logs ... and
//!   truncate them as appropriate to achieve a given dataset size").
//!
//! A [`Trace`] can round-trip through Common Log Format, so the replay
//! pipeline exercises the same code a user would run on real logs.

use std::collections::HashMap;

use flash_core::FileSpec;
use flash_http::clf::LogEntry;
use flash_simcore::SimRng;

use crate::sitegen::{generate_files, SizeDist};
use crate::zipf::Zipf;

/// Parameters of a synthetic trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Trace name (report label).
    pub name: &'static str,
    /// Total bytes across distinct files.
    pub dataset_bytes: u64,
    /// Zipf skew of request popularity.
    pub zipf_alpha: f64,
    /// File-size distribution.
    pub sizes: SizeDist,
    /// Length of the generated request log.
    pub n_requests: usize,
}

impl TraceConfig {
    /// Rice CS departmental trace: big dataset, bigger transfers.
    pub fn cs() -> Self {
        TraceConfig {
            name: "CS",
            dataset_bytes: 200 * 1024 * 1024,
            zipf_alpha: 0.72,
            sizes: SizeDist {
                body_median: 9_000.0,
                tail_fraction: 0.06,
                ..SizeDist::default()
            },
            n_requests: 200_000,
        }
    }

    /// Rice Owlnet trace: small dataset, high locality, small transfers.
    pub fn owlnet() -> Self {
        TraceConfig {
            name: "Owlnet",
            dataset_bytes: 36 * 1024 * 1024,
            zipf_alpha: 0.95,
            sizes: SizeDist {
                body_median: 4_500.0,
                tail_fraction: 0.025,
                ..SizeDist::default()
            },
            n_requests: 200_000,
        }
    }

    /// Rice ECE trace: the base log truncated for the dataset sweeps.
    pub fn ece() -> Self {
        TraceConfig {
            name: "ECE",
            dataset_bytes: 180 * 1024 * 1024,
            zipf_alpha: 0.78,
            sizes: SizeDist::default(),
            n_requests: 300_000,
        }
    }
}

/// A workload: a file set plus a request log (tokens indexing the files).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Distinct files.
    pub specs: Vec<FileSpec>,
    /// Request log: each entry is an index into `specs`.
    pub requests: Vec<u64>,
}

impl Trace {
    /// Synthesizes a trace from a config, deterministically per seed.
    pub fn generate(cfg: &TraceConfig, seed: u64) -> Trace {
        let mut rng = SimRng::new(seed);
        let specs = generate_files(&mut rng, cfg.dataset_bytes, &cfg.sizes);
        // Assign popularity ranks to files in shuffled order so that
        // popularity and size are independent (rank 0 is not always the
        // first-generated file).
        let n = specs.len();
        let mut perm: Vec<u64> = (0..n as u64).collect();
        for i in (1..n).rev() {
            let j = rng.uniform(0, (i + 1) as u64) as usize;
            perm.swap(i, j);
        }
        let zipf = Zipf::new(n, cfg.zipf_alpha);
        let requests = (0..cfg.n_requests)
            .map(|_| perm[zipf.sample(&mut rng)])
            .collect();
        Trace { specs, requests }
    }

    /// A trivial single-file workload (the Figure 6/7 test).
    pub fn single_file(size: u64) -> Trace {
        Trace {
            specs: vec![FileSpec::file("/docs/test/file.html", size)],
            requests: vec![0],
        }
    }

    /// Total bytes across distinct files *touched by the request log*
    /// (the paper's notion of dataset size for a truncated log).
    pub fn dataset_bytes(&self) -> u64 {
        let mut seen = vec![false; self.specs.len()];
        let mut total = 0;
        for &r in &self.requests {
            if !seen[r as usize] {
                seen[r as usize] = true;
                total += self.specs[r as usize].size;
            }
        }
        total
    }

    /// Mean response body size over the request log.
    pub fn mean_transfer_bytes(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .requests
            .iter()
            .map(|&r| self.specs[r as usize].size)
            .sum();
        total as f64 / self.requests.len() as f64
    }

    /// The paper's truncation methodology: keep the log prefix whose
    /// distinct files total `target_bytes`, drop every later request to a
    /// file outside that set, and shrink the file set accordingly.
    pub fn truncate_to_dataset(&self, target_bytes: u64) -> Trace {
        let mut keep = vec![false; self.specs.len()];
        let mut total = 0u64;
        for &r in &self.requests {
            let i = r as usize;
            if !keep[i] {
                if total + self.specs[i].size > target_bytes && total > 0 {
                    continue;
                }
                keep[i] = true;
                total += self.specs[i].size;
                if total >= target_bytes {
                    break;
                }
            }
        }
        // Remap kept files to dense tokens.
        let mut remap: HashMap<u64, u64> = HashMap::new();
        let mut specs = Vec::new();
        for (i, spec) in self.specs.iter().enumerate() {
            if keep[i] {
                remap.insert(i as u64, specs.len() as u64);
                specs.push(spec.clone());
            }
        }
        let requests = self
            .requests
            .iter()
            .filter_map(|r| remap.get(r).copied())
            .collect();
        Trace { specs, requests }
    }

    /// Renders the request log in Common Log Format.
    pub fn to_clf(&self) -> String {
        let mut out = String::new();
        for (i, &r) in self.requests.iter().enumerate() {
            let f = &self.specs[r as usize];
            let e = LogEntry {
                host: format!("client{}.rice.edu", i % 64),
                path: f.path.clone(),
                status: 200,
                bytes: f.size,
            };
            out.push_str(&e.to_line());
            out.push('\n');
        }
        out
    }

    /// Reconstructs a trace from a CLF log: distinct paths become files
    /// (sized by the largest logged transfer for that path), lines become
    /// requests. Malformed lines are skipped, like real log tooling.
    pub fn from_clf(text: &str) -> Trace {
        let mut specs: Vec<FileSpec> = Vec::new();
        let mut index: HashMap<String, u64> = HashMap::new();
        let mut requests = Vec::new();
        for entry in text.lines().filter_map(LogEntry::parse) {
            let token = *index.entry(entry.path.clone()).or_insert_with(|| {
                specs.push(FileSpec::file(entry.path.clone(), entry.bytes));
                (specs.len() - 1) as u64
            });
            let f = &mut specs[token as usize];
            f.size = f.size.max(entry.bytes);
            requests.push(token);
        }
        Trace { specs, requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trace_matches_config() {
        let cfg = TraceConfig {
            dataset_bytes: 5 * 1024 * 1024,
            n_requests: 10_000,
            ..TraceConfig::owlnet()
        };
        let t = Trace::generate(&cfg, 42);
        assert_eq!(t.requests.len(), 10_000);
        let total: u64 = t.specs.iter().map(|s| s.size).sum();
        assert!(total >= 5 * 1024 * 1024);
        for &r in &t.requests {
            assert!((r as usize) < t.specs.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TraceConfig {
            dataset_bytes: 1024 * 1024,
            n_requests: 1000,
            ..TraceConfig::cs()
        };
        assert_eq!(Trace::generate(&cfg, 7), Trace::generate(&cfg, 7));
    }

    #[test]
    fn popularity_is_skewed() {
        let cfg = TraceConfig {
            dataset_bytes: 8 * 1024 * 1024,
            n_requests: 50_000,
            ..TraceConfig::owlnet()
        };
        let t = Trace::generate(&cfg, 1);
        let mut counts = vec![0u64; t.specs.len()];
        for &r in &t.requests {
            counts[r as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: u64 = counts.iter().take(counts.len() / 10).sum();
        let total: u64 = counts.iter().sum();
        assert!(
            top10 as f64 > total as f64 * 0.45,
            "top 10% of files got {top10}/{total}"
        );
    }

    #[test]
    fn truncation_hits_target_and_stays_consistent() {
        let cfg = TraceConfig {
            dataset_bytes: 20 * 1024 * 1024,
            n_requests: 30_000,
            ..TraceConfig::ece()
        };
        let base = Trace::generate(&cfg, 3);
        for target in [2u64, 5, 10].map(|m| m * 1024 * 1024) {
            let t = base.truncate_to_dataset(target);
            let ds = t.dataset_bytes();
            assert!(
                ds <= target + SizeDist::default().max_bytes && ds > target / 2,
                "target {target}, got {ds}"
            );
            for &r in &t.requests {
                assert!((r as usize) < t.specs.len());
            }
            assert!(!t.requests.is_empty());
        }
    }

    #[test]
    fn truncation_is_monotone_in_target() {
        let cfg = TraceConfig {
            dataset_bytes: 20 * 1024 * 1024,
            n_requests: 20_000,
            ..TraceConfig::ece()
        };
        let base = Trace::generate(&cfg, 4);
        let mut last = 0;
        for target in (2..=18).map(|m| m as u64 * 1024 * 1024) {
            let ds = base.truncate_to_dataset(target).dataset_bytes();
            assert!(ds >= last, "dataset shrank: {last} -> {ds}");
            last = ds;
        }
    }

    #[test]
    fn clf_round_trip_preserves_request_stream() {
        let cfg = TraceConfig {
            dataset_bytes: 1024 * 1024,
            n_requests: 2_000,
            ..TraceConfig::cs()
        };
        let t = Trace::generate(&cfg, 5);
        let back = Trace::from_clf(&t.to_clf());
        assert_eq!(back.requests.len(), t.requests.len());
        // Token numbering may differ, but the path sequence must match.
        for (a, b) in t.requests.iter().zip(&back.requests) {
            assert_eq!(t.specs[*a as usize].path, back.specs[*b as usize].path);
            assert_eq!(t.specs[*a as usize].size, back.specs[*b as usize].size);
        }
    }

    #[test]
    fn presets_have_the_papers_relationships() {
        let cs = TraceConfig::cs();
        let owl = TraceConfig::owlnet();
        assert!(cs.dataset_bytes > owl.dataset_bytes, "CS is disk-bound");
        assert!(owl.zipf_alpha > cs.zipf_alpha, "Owlnet has higher locality");
        assert!(
            cs.sizes.body_median > owl.sizes.body_median,
            "CS has larger transfers"
        );
    }

    #[test]
    fn single_file_trace() {
        let t = Trace::single_file(100_000);
        assert_eq!(t.specs.len(), 1);
        assert_eq!(t.dataset_bytes(), 100_000);
        assert_eq!(t.mean_transfer_bytes(), 100_000.0);
    }
}
