//! Replay clients: the event-driven load generator of §6.
//!
//! The paper's client tool simulates many HTTP clients, each issuing
//! requests "as fast as the server can handle them". [`ReplayClient`]
//! does the same against the simulated kernel: all clients share one
//! cursor into the request log (the aggregate request stream follows the
//! log order, as in the paper's replay methodology), reconnecting per
//! request in HTTP/1.0 style or reusing one persistent connection in the
//! §6.4 WAN experiment.

use std::cell::RefCell;
use std::rc::Rc;

use flash_core::KEEP_ALIVE_BIT;
use flash_simcore::time::Nanos;
use flash_simcore::SimTime;
use flash_simos::kernel::{AgentEvent, Kernel};
use flash_simos::{Agent, AgentId, ConnId, ListenId};

use crate::trace::Trace;

/// Shared replay position in the request log.
pub type Cursor = Rc<RefCell<usize>>;

/// How clients use connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnMode {
    /// One request per connection (HTTP/1.0 benchmark style).
    PerRequest,
    /// One persistent connection per client (the §6.4 WAN experiment).
    Persistent,
}

/// One simulated client machine replaying the shared log.
pub struct ReplayClient {
    id: AgentId,
    listen: ListenId,
    trace: Rc<Trace>,
    cursor: Cursor,
    mode: ConnMode,
    link_bps: u64,
    rtt_ns: Nanos,
    sent_at: SimTime,
}

impl ReplayClient {
    fn next_token(&self) -> u64 {
        let mut cur = self.cursor.borrow_mut();
        let t = self.trace.requests[*cur % self.trace.requests.len()];
        *cur += 1;
        t
    }

    fn send_request(&mut self, k: &mut Kernel, conn: ConnId) {
        let mut token = self.next_token();
        let bytes = 140 + self.trace.specs[token as usize].path.len() as u64;
        if self.mode == ConnMode::Persistent {
            token |= KEEP_ALIVE_BIT;
        }
        self.sent_at = k.now();
        k.agent_send(conn, bytes, token);
    }

    fn reconnect(&self, k: &mut Kernel) {
        k.agent_connect(self.id, self.listen, self.link_bps, self.rtt_ns);
    }
}

impl Agent for ReplayClient {
    fn on_event(&mut self, k: &mut Kernel, ev: AgentEvent) {
        match ev {
            AgentEvent::Connected(conn) => self.send_request(k, conn),
            AgentEvent::ResponseComplete { conn } => {
                let latency = k.now().since(self.sent_at);
                k.metrics.response_latency.record(latency);
                if self.mode == ConnMode::Persistent {
                    self.send_request(k, conn);
                }
            }
            AgentEvent::Closed(_) => {
                if self.mode == ConnMode::PerRequest {
                    self.reconnect(k);
                }
            }
            AgentEvent::Data { .. } | AgentEvent::Timer(_) => {}
        }
    }
}

/// Client-fleet parameters.
#[derive(Debug, Clone)]
pub struct ClientFleet {
    /// Number of simulated clients.
    pub clients: usize,
    /// Connection mode.
    pub mode: ConnMode,
    /// Per-client link rate, bits/s (LAN: 100 Mb/s; WAN: much less).
    pub link_bps: u64,
    /// Client↔server round-trip time.
    pub rtt_ns: Nanos,
}

impl Default for ClientFleet {
    fn default() -> Self {
        ClientFleet {
            clients: 64,
            mode: ConnMode::PerRequest,
            link_bps: 100_000_000,
            rtt_ns: 200_000,
        }
    }
}

/// Attaches `fleet` clients replaying `trace` against `listen`, all
/// connecting at t=0. Returns the shared cursor (total requests issued).
pub fn attach_fleet(
    sim: &mut flash_simos::Simulation,
    listen: ListenId,
    trace: Rc<Trace>,
    fleet: &ClientFleet,
) -> Cursor {
    let cursor: Cursor = Rc::new(RefCell::new(0));
    for _ in 0..fleet.clients {
        let trace = Rc::clone(&trace);
        let cursor2 = Rc::clone(&cursor);
        let (mode, bps, rtt) = (fleet.mode, fleet.link_bps, fleet.rtt_ns);
        let id = sim.add_agent(move |id| {
            Box::new(ReplayClient {
                id,
                listen,
                trace,
                cursor: cursor2,
                mode,
                link_bps: bps,
                rtt_ns: rtt,
                sent_at: SimTime::ZERO,
            })
        });
        sim.kernel
            .agent_connect(id, listen, fleet.link_bps, fleet.rtt_ns);
    }
    cursor
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_core::{deploy, ServerConfig, Site};
    use flash_simos::{MachineConfig, Simulation};

    fn run(mode: ConnMode, secs: u64) -> (u64, f64) {
        let mut sim = Simulation::new(MachineConfig::freebsd());
        let trace = Rc::new(Trace::generate(
            &crate::trace::TraceConfig {
                dataset_bytes: 2 * 1024 * 1024,
                n_requests: 5_000,
                ..crate::trace::TraceConfig::owlnet()
            },
            9,
        ));
        let site = Site::build(&mut sim.kernel, &trace.specs);
        let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
        let fleet = ClientFleet {
            clients: 8,
            mode,
            ..ClientFleet::default()
        };
        attach_fleet(&mut sim, server.listen, trace, &fleet);
        sim.kernel.metrics.open_window(sim.kernel.now());
        sim.run_until(SimTime::from_secs(secs));
        let now = sim.kernel.now();
        (
            sim.kernel.metrics.requests.total(),
            sim.kernel.metrics.bandwidth_mbps(now),
        )
    }

    #[test]
    fn fleet_replays_against_flash() {
        let (reqs, mbps) = run(ConnMode::PerRequest, 2);
        assert!(reqs > 1_000, "only {reqs} requests");
        assert!(mbps > 5.0, "only {mbps} Mb/s");
    }

    #[test]
    fn persistent_mode_reuses_connections() {
        let mut sim = Simulation::new(MachineConfig::freebsd());
        let trace = Rc::new(Trace::single_file(4096));
        let site = Site::build(&mut sim.kernel, &trace.specs);
        let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
        let fleet = ClientFleet {
            clients: 5,
            mode: ConnMode::Persistent,
            ..ClientFleet::default()
        };
        attach_fleet(&mut sim, server.listen, trace, &fleet);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.kernel.metrics.conns_accepted.total(), 5);
        assert!(sim.kernel.metrics.requests.total() > 500);
    }

    #[test]
    fn latencies_are_recorded() {
        let mut sim = Simulation::new(MachineConfig::freebsd());
        let trace = Rc::new(Trace::single_file(8192));
        let site = Site::build(&mut sim.kernel, &trace.specs);
        let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
        attach_fleet(
            &mut sim,
            server.listen,
            trace,
            &ClientFleet {
                clients: 4,
                ..ClientFleet::default()
            },
        );
        sim.run_until(SimTime::from_millis(500));
        let h = &sim.kernel.metrics.response_latency;
        assert!(h.count() > 100);
        // Sub-millisecond floor (rtt + processing), sub-second ceiling.
        assert!(h.mean() > 100_000.0, "mean {}ns", h.mean());
        assert!(h.quantile(0.99) < 1_000_000_000, "p99 {}", h.quantile(0.99));
    }

    #[test]
    fn shared_cursor_follows_log_order() {
        let mut sim = Simulation::new(MachineConfig::freebsd());
        let trace = Rc::new(Trace::generate(
            &crate::trace::TraceConfig {
                dataset_bytes: 512 * 1024,
                n_requests: 100,
                ..crate::trace::TraceConfig::owlnet()
            },
            1,
        ));
        let site = Site::build(&mut sim.kernel, &trace.specs);
        let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
        let cursor = attach_fleet(
            &mut sim,
            server.listen,
            Rc::clone(&trace),
            &ClientFleet {
                clients: 3,
                ..ClientFleet::default()
            },
        );
        sim.run_until(SimTime::from_millis(300));
        let issued = *cursor.borrow();
        let completed = sim.kernel.metrics.requests.total() as usize;
        assert!(issued >= completed);
        assert!(
            issued <= completed + 3,
            "issued {issued} completed {completed}"
        );
    }
}
