//! Workload generation and replay for the Flash reproduction.
//!
//! * [`zipf`] — Zipf popularity sampling (web requests are Zipf-like).
//! * [`sitegen`] — heavy-tailed file-size distributions and site
//!   generation.
//! * [`trace`] — the paper's CS / Owlnet / ECE trace presets, the
//!   log-truncation methodology of §6.2, and Common-Log-Format
//!   round-tripping.
//! * [`client`] — the event-driven replay clients of §6, in per-request
//!   (HTTP/1.0) and persistent (§6.4 WAN) modes.

pub mod client;
pub mod sitegen;
pub mod trace;
pub mod zipf;

pub use client::{attach_fleet, ClientFleet, ConnMode, ReplayClient};
pub use sitegen::{generate_files, SizeDist};
pub use trace::{Trace, TraceConfig};
pub use zipf::Zipf;
