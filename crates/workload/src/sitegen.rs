//! Synthetic site generation: file sizes and paths.
//!
//! Web file sizes are heavy-tailed (Crovella & Bestavros, SIGMETRICS'96,
//! the paper's reference 11): a log-normal body of small HTML/image files plus a
//! Pareto tail of large archives. The generator produces a file set with
//! a target total (dataset) size and realistic paths/extensions.

use flash_core::FileSpec;
use flash_simcore::SimRng;

/// Parameters of a synthetic file-size distribution.
#[derive(Debug, Clone)]
pub struct SizeDist {
    /// Median of the log-normal body, bytes.
    pub body_median: f64,
    /// Log-space sigma of the body.
    pub body_sigma: f64,
    /// Fraction of files drawn from the Pareto tail.
    pub tail_fraction: f64,
    /// Pareto scale (minimum tail size), bytes.
    pub tail_scale: f64,
    /// Pareto shape (lower = heavier tail).
    pub tail_alpha: f64,
    /// Upper clamp on any file, bytes.
    pub max_bytes: u64,
}

impl Default for SizeDist {
    fn default() -> Self {
        SizeDist {
            body_median: 6_000.0,
            body_sigma: 1.2,
            tail_fraction: 0.04,
            tail_scale: 60_000.0,
            tail_alpha: 1.2,
            max_bytes: 4 * 1024 * 1024,
        }
    }
}

impl SizeDist {
    /// Draws one file size.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let raw = if rng.chance(self.tail_fraction) {
            rng.pareto(self.tail_scale, self.tail_alpha)
        } else {
            rng.lognormal(self.body_median.ln(), self.body_sigma)
        };
        (raw as u64).clamp(64, self.max_bytes)
    }
}

const EXTS: &[&str] = &[
    "html", "html", "html", "gif", "gif", "jpg", "jpg", "txt", "ps", "pdf", "tar",
];

/// Generates files until the dataset reaches `target_bytes` (at least one
/// file). Paths mimic a departmental server: `/~userN/dirM/fileK.ext`.
pub fn generate_files(rng: &mut SimRng, target_bytes: u64, dist: &SizeDist) -> Vec<FileSpec> {
    let mut specs = Vec::new();
    let mut total = 0u64;
    while total < target_bytes {
        let size = dist.sample(rng);
        let i = specs.len() as u64;
        let ext = EXTS[rng.uniform(0, EXTS.len() as u64) as usize];
        let path = format!("/~user{}/d{}/f{}.{}", i % 211, (i / 7) % 31, i, ext);
        total += size;
        specs.push(FileSpec::file(path, size));
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_clamped_and_positive() {
        let d = SizeDist::default();
        let mut rng = SimRng::new(1);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!(s >= 64 && s <= d.max_bytes);
        }
    }

    #[test]
    fn distribution_is_heavy_tailed() {
        let d = SizeDist::default();
        let mut rng = SimRng::new(2);
        let sizes: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        let median = sorted[sizes.len() / 2] as f64;
        // Heavy tail: mean well above median.
        assert!(mean > median * 1.5, "mean {mean}, median {median}");
        // Typical web content: median in the KB range.
        assert!(median > 1_000.0 && median < 40_000.0, "median {median}");
    }

    #[test]
    fn generate_hits_dataset_target() {
        let mut rng = SimRng::new(3);
        let specs = generate_files(&mut rng, 10 * 1024 * 1024, &SizeDist::default());
        let total: u64 = specs.iter().map(|s| s.size).sum();
        assert!(total >= 10 * 1024 * 1024);
        // Overshoot bounded by one max-size file.
        assert!(total < 10 * 1024 * 1024 + SizeDist::default().max_bytes);
        assert!(specs.len() > 100, "only {} files for 10 MB", specs.len());
    }

    #[test]
    fn paths_are_unique_and_well_formed() {
        let mut rng = SimRng::new(4);
        let specs = generate_files(&mut rng, 1024 * 1024, &SizeDist::default());
        let mut paths: Vec<&str> = specs.iter().map(|s| s.path.as_str()).collect();
        let n = paths.len();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), n, "duplicate paths generated");
        for p in paths {
            assert!(p.starts_with("/~user"), "odd path {p}");
            assert!(p.contains('.'), "no extension in {p}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_files(&mut SimRng::new(7), 1024 * 1024, &SizeDist::default());
        let b = generate_files(&mut SimRng::new(7), 1024 * 1024, &SizeDist::default());
        assert_eq!(a, b);
    }
}
