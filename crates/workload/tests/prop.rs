//! Property tests for workload generation: truncation, sampling, sizes.

use flash_simcore::SimRng;
use flash_workload::{SizeDist, Trace, TraceConfig, Zipf};
use proptest::prelude::*;

fn small_trace(seed: u64, dataset_kb: u64, n_requests: usize) -> Trace {
    Trace::generate(
        &TraceConfig {
            dataset_bytes: dataset_kb * 1024,
            n_requests,
            ..TraceConfig::ece()
        },
        seed,
    )
}

proptest! {
    /// Truncation always yields a consistent trace: tokens in range,
    /// dataset within a file of the target, and never larger than the
    /// original.
    #[test]
    fn truncation_is_consistent(seed in 0u64..1000, target_kb in 64u64..4096) {
        let base = small_trace(seed, 4096, 4000);
        let t = base.truncate_to_dataset(target_kb * 1024);
        for &r in &t.requests {
            prop_assert!((r as usize) < t.specs.len());
        }
        let ds = t.dataset_bytes();
        prop_assert!(ds <= base.dataset_bytes());
        prop_assert!(ds <= target_kb * 1024 + SizeDist::default().max_bytes);
        // The request stream is a subsequence of the original's paths.
        prop_assert!(t.requests.len() <= base.requests.len());
    }

    /// Larger targets keep at least as much data (monotonicity).
    #[test]
    fn truncation_is_monotone(seed in 0u64..200, a_kb in 64u64..2048, b_kb in 64u64..2048) {
        let (lo, hi) = (a_kb.min(b_kb), a_kb.max(b_kb));
        let base = small_trace(seed, 3000, 3000);
        let dlo = base.truncate_to_dataset(lo * 1024).dataset_bytes();
        let dhi = base.truncate_to_dataset(hi * 1024).dataset_bytes();
        prop_assert!(dhi >= dlo);
    }

    /// Zipf samples stay in range and the most popular rank really is
    /// sampled at least as often as a deep-tail rank.
    #[test]
    fn zipf_in_range_and_skewed(n in 2usize..5000, seed in 0u64..1000) {
        let z = Zipf::new(n, 0.8);
        let mut rng = SimRng::new(seed);
        let mut head = 0u32;
        let mut tail = 0u32;
        for _ in 0..500 {
            let r = z.sample(&mut rng);
            prop_assert!(r < n);
            if r == 0 { head += 1; }
            if r == n - 1 { tail += 1; }
        }
        if n > 100 {
            prop_assert!(head >= tail);
        }
    }

    /// Generated file sizes are clamped to the configured range.
    #[test]
    fn sizes_respect_bounds(seed in 0u64..1000) {
        let d = SizeDist::default();
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            let s = d.sample(&mut rng);
            prop_assert!(s >= 64);
            prop_assert!(s <= d.max_bytes);
        }
    }

    /// CLF round-trip preserves the request path sequence for any seed.
    #[test]
    fn clf_round_trip_any_seed(seed in 0u64..500) {
        let t = small_trace(seed, 256, 200);
        let back = Trace::from_clf(&t.to_clf());
        prop_assert_eq!(back.requests.len(), t.requests.len());
        for (a, b) in t.requests.iter().zip(&back.requests) {
            prop_assert_eq!(&t.specs[*a as usize].path, &back.specs[*b as usize].path);
        }
    }
}
