//! Figure 11: Flash performance breakdown.
//!
//! The single-file (cached) test on FreeBSD, run with all eight
//! combinations of Flash's three caching optimizations: pathname
//! translation, mapped files, and response headers. Expected shape: each
//! cache contributes; pathname caching contributes most (a miss costs a
//! helper round trip per request); with no caching the small-file
//! connection rate roughly halves.

use std::rc::Rc;

use flash_core::ServerConfig;
use flash_simcore::SimTime;
use flash_simos::MachineConfig;
use flash_workload::{ClientFleet, ConnMode, Trace};

use crate::runner::{run_one, RunParams};
use crate::table::{Figure, Series};
use crate::Scale;

/// File sizes of the sweep (KB).
pub const SIZES_KB: &[u64] = &[1, 2, 5, 10, 15, 20];

/// The eight configurations, in the paper's legend order:
/// (label, pathname cache, mapped-file cache, response-header cache).
pub const COMBOS: &[(&str, bool, bool, bool)] = &[
    ("all (Flash)", true, true, true),
    ("path & mmap", true, true, false),
    ("path & resp", true, false, true),
    ("path only", true, false, false),
    ("mmap & resp", false, true, true),
    ("mmap only", false, true, false),
    ("resp only", false, false, true),
    ("no caching", false, false, false),
];

/// Builds the Flash config with the given caches enabled.
pub fn combo_config(path: bool, mmap: bool, resp: bool) -> ServerConfig {
    let mut cfg = ServerConfig::flash();
    if !path {
        cfg.path_cache_entries = 0;
    }
    if !mmap {
        cfg.mmap_cache_bytes = 0;
    }
    cfg.header_cache = resp;
    cfg
}

/// Figure 11: connection rate vs file size for all eight combinations.
pub fn fig11(scale: Scale) -> Figure {
    let machine = MachineConfig::freebsd();
    let sizes: Vec<u64> = match scale {
        Scale::Full => SIZES_KB.to_vec(),
        Scale::Quick => vec![1, 10],
    };
    let combos: &[(&str, bool, bool, bool)] = match scale {
        Scale::Full => COMBOS,
        Scale::Quick => &[COMBOS[0], COMBOS[7]],
    };
    let params = RunParams {
        warmup: SimTime::from_millis(500),
        window: match scale {
            Scale::Full => SimTime::from_secs(4),
            Scale::Quick => SimTime::from_secs(2),
        },
        prewarm_cache: true,
    };
    let fleet = ClientFleet {
        clients: 32,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let mut fig = Figure::new(
        "fig11",
        "Flash performance breakdown (FreeBSD, cached single file)",
        "File size (KB)",
        "Connection rate (req/s)",
    );
    for &(label, path, mmap, resp) in combos {
        let cfg = combo_config(path, mmap, resp);
        let mut s = Series::new(label);
        for &kb in &sizes {
            let trace = Rc::new(Trace::single_file(kb * 1024));
            let (r, _) = run_one(&machine, &cfg, &trace, &fleet, &params).expect("flash");
            s.points.push((kb as f64, r.requests_per_sec));
        }
        fig.series.push(s);
    }
    fig
}
