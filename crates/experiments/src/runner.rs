//! The shared experiment harness: build, warm, measure.
//!
//! Every figure driver follows the same protocol: realize the trace as a
//! site, deploy the server, attach the client fleet, optionally pre-warm
//! the page cache to the steady state a long-running server would have
//! (least-popular first, so the most popular content ends most recently
//! used), run a warm-up phase, then measure over a window.

use std::rc::Rc;

use flash_core::{deploy, DeployError, ServerConfig, ServerHandle, Site};
use flash_simcore::SimTime;
use flash_simos::fs::META_FILE;
use flash_simos::{MachineConfig, Simulation, PAGE_SIZE};
use flash_workload::{attach_fleet, ClientFleet, Trace};

/// Measured outcome of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Server name.
    pub server: String,
    /// Delivered bandwidth over the window, Mb/s.
    pub bandwidth_mbps: f64,
    /// Completed responses per second.
    pub requests_per_sec: f64,
    /// Mean response latency, microseconds.
    pub latency_mean_us: f64,
    /// Approximate 99th-percentile latency, microseconds.
    pub latency_p99_us: u64,
    /// CPU utilization in the window [0, 1].
    pub cpu_util: f64,
    /// Disk utilization in the window [0, 1].
    pub disk_util: f64,
    /// Disk read operations in the window.
    pub disk_reads: u64,
    /// Mean ready descriptors per select call.
    pub select_aggregation: f64,
}

/// Run-shape parameters.
#[derive(Debug, Clone)]
pub struct RunParams {
    /// Simulated warm-up before the measurement window.
    pub warmup: SimTime,
    /// Measurement window length.
    pub window: SimTime,
    /// Pre-warm the page cache to steady state before starting.
    pub prewarm_cache: bool,
}

impl Default for RunParams {
    fn default() -> Self {
        RunParams {
            warmup: SimTime::from_secs(1),
            window: SimTime::from_secs(4),
            prewarm_cache: true,
        }
    }
}

/// Deploys `server_cfg` against `trace` with `fleet` clients and measures.
///
/// Returns `Err` only for configuration errors (e.g. MT without kernel
/// threads) — the caller decides whether to skip the series.
pub fn run_one(
    machine: &MachineConfig,
    server_cfg: &ServerConfig,
    trace: &Rc<Trace>,
    fleet: &ClientFleet,
    params: &RunParams,
) -> Result<(RunResult, ServerHandle), DeployError> {
    let mut sim = Simulation::new(machine.clone());
    let site = Site::build(&mut sim.kernel, &trace.specs);
    let server = deploy(&mut sim, server_cfg, Rc::clone(&site))?;
    if params.prewarm_cache {
        prewarm(&mut sim, trace, &site);
    }
    attach_fleet(&mut sim, server.listen, Rc::clone(trace), fleet);
    sim.run_until(params.warmup);
    let start = sim.kernel.now();
    sim.kernel.metrics.open_window(start);
    let disk_busy_before = sim.kernel.disk.busy_ns;
    let deadline = SimTime(start.as_nanos() + params.window.as_nanos());
    sim.run_until(deadline);
    let now = sim.kernel.now();
    let m = &sim.kernel.metrics;
    let result = RunResult {
        server: server_cfg.name.clone(),
        bandwidth_mbps: m.bandwidth_mbps(now),
        requests_per_sec: m.request_rate(now),
        latency_mean_us: m.response_latency.mean() / 1_000.0,
        latency_p99_us: m.response_latency.quantile(0.99) / 1_000,
        cpu_util: m.cpu_utilization(now),
        disk_util: (sim.kernel.disk.busy_ns - disk_busy_before) as f64
            / m.elapsed(now).max(1) as f64,
        disk_reads: m.disk_reads.total(),
        select_aggregation: m.select_aggregation(),
    };
    Ok((result, server))
}

/// Fills the page cache with the steady-state content of a long-running
/// server: pages of files in increasing popularity order (most popular
/// inserted last → most recently used), metadata pages first.
fn prewarm(sim: &mut Simulation, trace: &Trace, site: &Site) {
    // Popularity = request count in the log.
    let mut counts = vec![0u64; trace.specs.len()];
    for &r in &trace.requests {
        counts[r as usize] += 1;
    }
    let mut order: Vec<usize> = (0..trace.specs.len()).collect();
    order.sort_by_key(|&i| counts[i]);
    // Metadata for every file (it is small and hot).
    let files: Vec<_> = order
        .iter()
        .filter_map(|&i| site.file(i as u64).fid.map(|fid| (i, fid)))
        .collect();
    for &(_, fid) in &files {
        let meta = sim.kernel.fs.get(fid).meta_page();
        sim.kernel.cache.insert((META_FILE, meta));
    }
    for &(i, fid) in &files {
        let pages = site.file(i as u64).size.div_ceil(PAGE_SIZE).max(1);
        for p in 0..pages {
            sim.kernel.cache.insert((fid, p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_workload::ConnMode;

    #[test]
    fn run_one_produces_sane_metrics() {
        let trace = Rc::new(Trace::single_file(8 * 1024));
        let fleet = ClientFleet {
            clients: 16,
            mode: ConnMode::PerRequest,
            ..ClientFleet::default()
        };
        let params = RunParams {
            warmup: SimTime::from_millis(500),
            window: SimTime::from_secs(2),
            prewarm_cache: true,
        };
        let (r, _) = run_one(
            &MachineConfig::freebsd(),
            &ServerConfig::flash(),
            &trace,
            &fleet,
            &params,
        )
        .expect("deploy");
        assert!(r.requests_per_sec > 1_000.0, "{:?}", r);
        assert!(r.bandwidth_mbps > 50.0, "{:?}", r);
        assert!(r.cpu_util > 0.5 && r.cpu_util <= 1.0, "{:?}", r);
        assert!(r.disk_reads == 0, "prewarmed cache must not fault: {:?}", r);
        assert!(r.latency_mean_us > 100.0 && r.latency_mean_us < 100_000.0);
    }

    #[test]
    fn mt_on_freebsd_is_a_config_error() {
        let trace = Rc::new(Trace::single_file(1024));
        let err = run_one(
            &MachineConfig::freebsd(),
            &ServerConfig::flash_mt(),
            &trace,
            &ClientFleet::default(),
            &RunParams::default(),
        )
        .err()
        .expect("must fail");
        assert_eq!(err, DeployError::NoKernelThreads);
    }
}
