//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's figures and probe *why* the design works:
//!
//! * [`helper_pool_sweep`] — §6.2's claim that "Flash only needs enough
//!   helper processes to keep the disk busy": throughput vs pool size on
//!   a disk-bound workload should saturate quickly.
//! * [`alignment_ablation`] — what §5.5 byte-position alignment is worth
//!   on its own (Flash with padded vs unpadded headers).
//! * [`disk_scheduler_ablation`] — C-LOOK vs FCFS under AMPED's
//!   concurrent disk requests (§4.1 "disk head scheduling").
//! * [`residency_policy`] — `mincore` (§5.7) vs the mapped-cache
//!   prediction heuristic (the paper's proposed fallback) vs no check at
//!   all (SPED), cached and disk-bound.

use std::rc::Rc;

use flash_core::ServerConfig;
use flash_simcore::SimTime;
use flash_simos::MachineConfig;
use flash_workload::{ClientFleet, ConnMode, Trace, TraceConfig};

use crate::runner::{run_one, RunParams};
use crate::table::{Figure, Series};
use crate::Scale;

fn disk_bound_trace(seed: u64) -> Rc<Trace> {
    let base = Trace::generate(&TraceConfig::ece(), seed);
    Rc::new(base.truncate_to_dataset(150 * 1024 * 1024))
}

fn cached_trace(seed: u64) -> Rc<Trace> {
    let base = Trace::generate(&TraceConfig::ece(), seed);
    Rc::new(base.truncate_to_dataset(30 * 1024 * 1024))
}

fn params(scale: Scale) -> RunParams {
    RunParams {
        warmup: SimTime::from_secs(1),
        window: match scale {
            Scale::Full => SimTime::from_secs(5),
            Scale::Quick => SimTime::from_secs(2),
        },
        prewarm_cache: true,
    }
}

fn fleet() -> ClientFleet {
    ClientFleet {
        clients: 64,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    }
}

/// Throughput vs helper-pool size, disk-bound (FreeBSD, ECE 150 MB).
pub fn helper_pool_sweep(scale: Scale) -> Figure {
    let machine = MachineConfig::freebsd();
    let trace = disk_bound_trace(2026);
    let pools: Vec<usize> = match scale {
        Scale::Full => vec![1, 2, 4, 8, 16, 32, 64],
        Scale::Quick => vec![1, 8, 32],
    };
    let mut fig = Figure::new(
        "ablation-helpers",
        "Flash throughput vs helper-pool size (disk-bound)",
        "Helper processes",
        "Bandwidth (Mb/s)",
    );
    let mut s = Series::new("Flash");
    for &h in &pools {
        let cfg = ServerConfig {
            helpers: h,
            ..ServerConfig::flash()
        };
        let (r, _) = run_one(&machine, &cfg, &trace, &fleet(), &params(scale)).expect("flash");
        s.points.push((h as f64, r.bandwidth_mbps));
    }
    fig.series.push(s);
    fig
}

/// Connection rate with and without §5.5 header alignment padding.
pub fn alignment_ablation(scale: Scale) -> Figure {
    let machine = MachineConfig::freebsd();
    let sizes: Vec<u64> = match scale {
        Scale::Full => vec![1, 5, 10, 20, 50, 100],
        Scale::Quick => vec![5, 50],
    };
    let mut fig = Figure::new(
        "ablation-alignment",
        "Byte-position alignment (§5.5): Flash with padded vs raw headers",
        "File size (KB)",
        "Connection rate (req/s)",
    );
    for (label, aligned) in [("aligned", true), ("misaligned", false)] {
        let cfg = ServerConfig {
            aligned_headers: aligned,
            ..ServerConfig::flash()
        };
        let mut s = Series::new(label);
        for &kb in &sizes {
            let trace = Rc::new(Trace::single_file(kb * 1024));
            let (r, _) = run_one(&machine, &cfg, &trace, &fleet(), &params(scale)).expect("flash");
            s.points.push((kb as f64, r.requests_per_sec));
        }
        fig.series.push(s);
    }
    fig
}

/// C-LOOK vs FCFS disk scheduling under Flash, disk-bound.
pub fn disk_scheduler_ablation(scale: Scale) -> Figure {
    let trace = disk_bound_trace(2027);
    let mut fig = Figure::new(
        "ablation-disk-sched",
        "Disk-head scheduling (§4.1): C-LOOK vs FCFS, Flash, disk-bound",
        "bar",
        "Bandwidth (Mb/s)",
    );
    for (label, elevator) in [("C-LOOK", true), ("FCFS", false)] {
        let mut machine = MachineConfig::freebsd();
        machine.disk.elevator = elevator;
        let (r, _) = run_one(
            &machine,
            &ServerConfig::flash(),
            &trace,
            &fleet(),
            &params(scale),
        )
        .expect("flash");
        let mut s = Series::new(label);
        s.points.push((0.0, r.bandwidth_mbps));
        fig.series.push(s);
    }
    fig
}

/// Residency policies (§5.7): kernel `mincore`, the mapped-cache
/// prediction heuristic, and no check at all (SPED), on a cached and a
/// disk-bound dataset.
pub fn residency_policy(scale: Scale) -> Figure {
    let machine = MachineConfig::freebsd();
    let mut fig = Figure::new(
        "ablation-residency",
        "Residency policy (§5.7): mincore vs heuristic vs none (x=dataset MB)",
        "Dataset size (MB)",
        "Bandwidth (Mb/s)",
    );
    let cases = [
        ("mincore (Flash)", ServerConfig::flash()),
        ("heuristic (§5.7)", ServerConfig::flash_heuristic()),
        ("none (SPED)", ServerConfig::flash_sped()),
    ];
    for (label, cfg) in cases {
        let mut s = Series::new(label);
        for (mb, trace) in [(30u64, cached_trace(2028)), (150, disk_bound_trace(2028))] {
            let (r, _) = run_one(&machine, &cfg, &trace, &fleet(), &params(scale)).expect("ok");
            s.points.push((mb as f64, r.bandwidth_mbps));
        }
        fig.series.push(s);
    }
    fig
}

/// All ablations.
pub fn all(scale: Scale) -> Vec<Figure> {
    vec![
        helper_pool_sweep(scale),
        alignment_ablation(scale),
        disk_scheduler_ablation(scale),
        residency_policy(scale),
    ]
}
