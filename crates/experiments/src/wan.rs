//! Figure 12: performance under WAN conditions (adding clients).
//!
//! Persistent connections simulate long-lived WAN connections (§6.4); the
//! ECE trace truncated to 90 MB exposes a limited file cache; the client
//! count sweeps from 16 to 500 on Solaris. MP and MT spawn one process /
//! thread per connection (§4.2 "long-lived connections" — that is
//! precisely their cost), AMPED and SPED keep their fixed structure.
//!
//! Expected shapes: SPED/AMPED/MT rise initially (select aggregation and
//! added concurrency), then SPED and AMPED stay flat; MT declines
//! gradually (per-thread switching and stack memory); MP declines
//! significantly (per-process memory squeezes the file cache, context
//! switches multiply).

use std::rc::Rc;

use flash_core::ServerConfig;
use flash_simcore::SimTime;
use flash_simos::MachineConfig;
use flash_workload::{ClientFleet, ConnMode, Trace, TraceConfig};

use crate::runner::{run_one, RunParams};
use crate::table::{Figure, Series};
use crate::Scale;

/// Client counts of the full sweep.
pub const CLIENTS: &[usize] = &[16, 32, 64, 100, 150, 200, 300, 400, 500];

/// Figure 12 line-up (the paper plots SPED, Flash, MT, MP). For MP and
/// MT the worker pool is sized to the connection count.
fn lineup(clients: usize) -> Vec<ServerConfig> {
    let mp = ServerConfig {
        workers: clients,
        ..ServerConfig::flash_mp()
    };
    let mt = ServerConfig {
        workers: clients,
        ..ServerConfig::flash_mt()
    };
    vec![ServerConfig::flash_sped(), ServerConfig::flash(), mt, mp]
}

/// Figure 12: bandwidth vs number of simultaneous (persistent) clients.
pub fn fig12(scale: Scale) -> Figure {
    let machine = MachineConfig::solaris();
    let clients: Vec<usize> = match scale {
        Scale::Full => CLIENTS.to_vec(),
        Scale::Quick => vec![16, 100, 400],
    };
    let base = Rc::new(Trace::generate(&TraceConfig::ece(), 2026));
    let trace = Rc::new(base.truncate_to_dataset(90 * 1024 * 1024));
    let params = RunParams {
        warmup: SimTime::from_secs(1),
        window: match scale {
            Scale::Full => SimTime::from_secs(5),
            Scale::Quick => SimTime::from_secs(2),
        },
        prewarm_cache: true,
    };
    let mut fig = Figure::new(
        "fig12",
        "Adding clients under WAN conditions (Solaris, ECE 90 MB, persistent)",
        "Simultaneous clients",
        "Bandwidth (Mb/s)",
    );
    // Initialize one series per architecture label (pool sizes vary per
    // point, so configs are rebuilt per client count).
    for label in ["Flash-SPED", "Flash", "Flash-MT", "Flash-MP"] {
        fig.series.push(Series::new(label));
    }
    for &n in &clients {
        let fleet = ClientFleet {
            clients: n,
            mode: ConnMode::Persistent,
            ..ClientFleet::default()
        };
        for cfg in lineup(n) {
            let (r, _) = run_one(&machine, &cfg, &trace, &fleet, &params).expect("solaris");
            fig.series
                .iter_mut()
                .find(|s| s.label == cfg.name)
                .expect("series pre-registered")
                .points
                .push((n as f64, r.bandwidth_mbps));
        }
    }
    fig
}
