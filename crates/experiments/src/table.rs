//! Result tables: the series a paper figure plots, with renderers.

use std::fmt::Write as _;

/// One plotted line (server) in a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label ("Flash", "SPED", ...).
    pub label: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The y value at the given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|(_, y)| *y)
    }

    /// Largest y value (0 for an empty series).
    pub fn y_max(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }
}

/// A reproduced figure: axes plus one series per server.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Paper figure id ("fig06-bandwidth").
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Plotted series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders a GitHub-markdown table (x in the first column, one
    /// column per series).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}", self.id, self.title);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s.label);
        }
        out.push('\n');
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        out.push('\n');
        for &(x, _) in self.series.first().map(|s| &s.points[..]).unwrap_or(&[]) {
            let _ = write!(out, "| {x:.1} |");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {y:.1} |");
                    }
                    None => {
                        let _ = write!(out, " – |");
                    }
                }
            }
            out.push('\n');
        }
        let _ = writeln!(out, "\n(y = {})", self.y_label);
        out
    }

    /// Renders CSV: header `x,label1,label2,...`, one row per x.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", sanitize_csv(&self.x_label));
        for s in &self.series {
            let _ = write!(out, ",{}", sanitize_csv(&s.label));
        }
        out.push('\n');
        for &(x, _) in self.series.first().map(|s| &s.points[..]).unwrap_or(&[]) {
            let _ = write!(out, "{x}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{y:.3}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

fn sanitize_csv(s: &str) -> String {
    s.replace([',', '\n'], " ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        let mut f = Figure::new("figX", "test", "size", "Mb/s");
        let mut a = Series::new("Flash");
        a.points = vec![(1.0, 10.0), (2.0, 20.0)];
        let mut b = Series::new("SPED");
        b.points = vec![(1.0, 11.0), (2.0, 19.0)];
        f.series = vec![a, b];
        f
    }

    #[test]
    fn y_lookup_and_max() {
        let f = sample();
        assert_eq!(f.series("Flash").unwrap().y_at(2.0), Some(20.0));
        assert_eq!(f.series("Flash").unwrap().y_at(3.0), None);
        assert_eq!(f.series("SPED").unwrap().y_max(), 19.0);
        assert!(f.series("Zeus").is_none());
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let md = sample().to_markdown();
        assert!(md.contains("| size | Flash | SPED |"));
        assert!(md.contains("| 1.0 | 10.0 | 11.0 |"));
        assert!(md.contains("| 2.0 | 20.0 | 19.0 |"));
    }

    #[test]
    fn csv_is_well_formed() {
        let csv = sample().to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("size,Flash,SPED"));
        assert_eq!(lines.next(), Some("1,10.000,11.000"));
        assert_eq!(lines.next(), Some("2,20.000,19.000"));
    }

    #[test]
    fn csv_sanitizes_labels() {
        let mut f = sample();
        f.series[0].label = "Fl,ash".into();
        assert!(f.to_csv().starts_with("size,Fl ash,SPED"));
    }
}
