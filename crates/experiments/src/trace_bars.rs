//! Figure 8: performance on the Rice server traces (Solaris).
//!
//! Two bar groups — the CS departmental trace (large dataset, disk-bound)
//! and the Owlnet trace (small dataset, cache-friendly) — for Apache, MP,
//! MT, SPED and Flash. Expected shape: Flash highest on both; Apache
//! lowest; SPED relatively strong on Owlnet (cached) but weak on CS
//! (disk-bound); MP the reverse.

use std::rc::Rc;

use flash_core::ServerConfig;
use flash_simcore::SimTime;
use flash_simos::MachineConfig;
use flash_workload::{ClientFleet, ConnMode, Trace, TraceConfig};

use crate::runner::{run_one, RunParams};
use crate::table::{Figure, Series};
use crate::Scale;

/// The Figure 8 server line-up, in the paper's bar order.
pub fn lineup() -> Vec<ServerConfig> {
    vec![
        ServerConfig::apache_like(),
        ServerConfig::flash_mp(),
        ServerConfig::flash_mt(),
        ServerConfig::flash_sped(),
        ServerConfig::flash(),
    ]
}

/// Runs one trace against the full line-up; each series holds a single
/// bar (x = 0).
fn bars(machine: &MachineConfig, trace_cfg: &TraceConfig, fig_id: &str, scale: Scale) -> Figure {
    let trace = Rc::new(Trace::generate(trace_cfg, 1999));
    let trace = match scale {
        Scale::Full => trace,
        Scale::Quick => Rc::new(Trace {
            specs: trace.specs.clone(),
            requests: trace.requests[..trace.requests.len() / 4].to_vec(),
        }),
    };
    let params = RunParams {
        warmup: SimTime::from_secs(1),
        window: match scale {
            Scale::Full => SimTime::from_secs(6),
            Scale::Quick => SimTime::from_secs(2),
        },
        prewarm_cache: true,
    };
    let fleet = ClientFleet {
        clients: 64,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let mut fig = Figure::new(
        fig_id,
        format!(
            "{} trace on {} ({} MB dataset)",
            trace_cfg.name,
            machine.os.name,
            trace.dataset_bytes() / (1024 * 1024)
        ),
        "bar",
        "Bandwidth (Mb/s)",
    );
    for cfg in lineup() {
        let mut s = Series::new(cfg.name.clone());
        let (r, _) = run_one(machine, &cfg, &trace, &fleet, &params).expect("solaris lineup");
        s.points.push((0.0, r.bandwidth_mbps));
        fig.series.push(s);
    }
    fig
}

/// Figure 8, both panels: CS then Owlnet, on Solaris.
pub fn fig08(scale: Scale) -> Vec<Figure> {
    let machine = MachineConfig::solaris();
    let (cs_cfg, owl_cfg) = match scale {
        Scale::Full => (TraceConfig::cs(), TraceConfig::owlnet()),
        Scale::Quick => (
            TraceConfig {
                dataset_bytes: 60 * 1024 * 1024,
                n_requests: 60_000,
                ..TraceConfig::cs()
            },
            TraceConfig {
                dataset_bytes: 16 * 1024 * 1024,
                n_requests: 60_000,
                ..TraceConfig::owlnet()
            },
        ),
    };
    // Quick scale also shrinks the machine so CS stays disk-bound.
    let machine = match scale {
        Scale::Full => machine,
        Scale::Quick => {
            let mut m = machine;
            m.memory.total_bytes = 64 * 1024 * 1024;
            m
        }
    };
    vec![
        bars(&machine, &cs_cfg, "fig08-cs", scale),
        bars(&machine, &owl_cfg, "fig08-owlnet", scale),
    ]
}
