//! Figures 9 and 10: real workload vs dataset size.
//!
//! The ECE trace is truncated to dataset sizes from 15 to 150 MB (§6.2)
//! and replayed against every server. Expected shapes: all servers
//! decline once the working set outgrows the ~100 MB effective cache;
//! Flash tracks Flash-SPED while cached and meets/exceeds MP when
//! disk-bound; Flash-SPED (and Zeus) drop drastically past the cliff;
//! Flash-MP underperforms on cached sets (smaller per-process caches);
//! Zeus's cliff arrives later (small-document priority shrinks its
//! effective working set); Solaris throughput is far below FreeBSD.

use std::rc::Rc;

use flash_core::ServerConfig;
use flash_simcore::SimTime;
use flash_simos::MachineConfig;
use flash_workload::{ClientFleet, ConnMode, Trace, TraceConfig};

use crate::runner::{run_one, RunParams};
use crate::table::{Figure, Series};
use crate::Scale;

/// Dataset sizes of the full sweep (MB).
pub const DATASET_MB: &[u64] = &[15, 30, 45, 60, 75, 90, 105, 120, 135, 150];

/// Server line-up; Zeus runs its two-process trace-test configuration.
pub fn lineup(os_has_threads: bool) -> Vec<ServerConfig> {
    let mut v = vec![
        ServerConfig::flash_sped(),
        ServerConfig::flash(),
        ServerConfig::zeus_like(2),
        ServerConfig::flash_mp(),
        ServerConfig::apache_like(),
    ];
    if os_has_threads {
        v.insert(3, ServerConfig::flash_mt());
    }
    v
}

/// Runs the sweep on `machine`.
pub fn run(machine: &MachineConfig, fig_id: &str, scale: Scale) -> Figure {
    let sizes_mb: Vec<u64> = match scale {
        Scale::Full => DATASET_MB.to_vec(),
        Scale::Quick => vec![15, 90, 150],
    };
    let base = Rc::new(Trace::generate(&TraceConfig::ece(), 2026));
    let params = RunParams {
        warmup: SimTime::from_secs(1),
        window: match scale {
            Scale::Full => SimTime::from_secs(5),
            Scale::Quick => SimTime::from_secs(2),
        },
        prewarm_cache: true,
    };
    let fleet = ClientFleet {
        clients: 64,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let mut fig = Figure::new(
        fig_id,
        format!(
            "ECE trace truncated to each dataset size, on {}",
            machine.os.name
        ),
        "Dataset size (MB)",
        "Bandwidth (Mb/s)",
    );
    for cfg in lineup(machine.os.kernel_threads) {
        let mut s = Series::new(cfg.name.clone());
        for &mb in &sizes_mb {
            let trace = Rc::new(base.truncate_to_dataset(mb * 1024 * 1024));
            let (r, _) = run_one(machine, &cfg, &trace, &fleet, &params).expect("lineup");
            s.points.push((mb as f64, r.bandwidth_mbps));
        }
        fig.series.push(s);
    }
    fig
}

/// Figure 9: FreeBSD (no MT — FreeBSD 2.2.6 lacks kernel threads).
pub fn fig09(scale: Scale) -> Figure {
    run(&MachineConfig::freebsd(), "fig09", scale)
}

/// Figure 10: Solaris (including Flash-MT).
pub fn fig10(scale: Scale) -> Figure {
    run(&MachineConfig::solaris(), "fig10", scale)
}
