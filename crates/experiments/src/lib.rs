//! Experiment drivers: one module per figure of the paper's evaluation.
//!
//! | Module | Paper figure |
//! |---|---|
//! | [`single_file`] | Figs. 6 (Solaris) and 7 (FreeBSD): cached single-file test |
//! | [`trace_bars`] | Fig. 8: Rice CS and Owlnet trace bandwidth (Solaris) |
//! | [`dataset_sweep`] | Figs. 9 (FreeBSD) and 10 (Solaris): bandwidth vs dataset size |
//! | [`breakdown`] | Fig. 11: contribution of the three caches |
//! | [`wan`] | Fig. 12: bandwidth vs concurrent clients (WAN conditions) |
//!
//! Beyond the paper, [`ablation`] probes the design choices themselves
//! (helper-pool size, §5.5 alignment, disk scheduling, §5.7 residency
//! policies).
//!
//! Every driver returns [`table::Figure`]s — the same series the paper
//! plots — and is deterministic for a given seed. `Scale::Quick` shrinks
//! sweeps for tests and Criterion benches; `Scale::Full` regenerates the
//! figures in full (see `examples/` and EXPERIMENTS.md).

pub mod ablation;
pub mod breakdown;
pub mod dataset_sweep;
pub mod runner;
pub mod single_file;
pub mod table;
pub mod trace_bars;
pub mod wan;

pub use runner::{run_one, RunParams, RunResult};
pub use table::{Figure, Series};

/// Sweep resolution: full paper sweeps or quick smoke runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's full parameter sweep.
    Full,
    /// A reduced sweep for tests and benches.
    Quick,
}
