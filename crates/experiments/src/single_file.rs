//! Figures 6 and 7: the single-file (cached) test.
//!
//! "A set of clients repeatedly request the same file, where the file
//! size is varied in each test" (§6.1). Two panels per OS: total output
//! bandwidth vs file size, and connection rate vs file size for small
//! files. The expected shapes: architecture barely matters on this
//! trivial cached workload; Flash-SPED edges out Flash (no mincore);
//! MT/MP trail slightly (switch overheads); Apache trails everyone by a
//! large margin; Zeus dips on FreeBSD between ~100 and ~175 KB from the
//! §5.5 alignment problem; FreeBSD beats Solaris across the board.

use std::rc::Rc;

use flash_core::ServerConfig;
use flash_simcore::SimTime;
use flash_simos::MachineConfig;
use flash_workload::{ClientFleet, ConnMode, Trace};

use crate::runner::{run_one, RunParams};
use crate::table::{Figure, Series};
use crate::Scale;

/// File sizes for the bandwidth panel (KB).
pub const BANDWIDTH_SIZES_KB: &[u64] = &[1, 5, 10, 20, 50, 100, 125, 150, 175, 200];
/// File sizes for the connection-rate panel (KB).
pub const RATE_SIZES_KB: &[u64] = &[1, 2, 5, 10, 15, 20];

/// The server line-up of Figures 6/7 (MT only where the OS supports it).
pub fn lineup(os_has_threads: bool) -> Vec<ServerConfig> {
    let mut v = vec![
        ServerConfig::flash_sped(),
        ServerConfig::flash(),
        ServerConfig::zeus_like(1),
        ServerConfig::flash_mp(),
        ServerConfig::apache_like(),
    ];
    if os_has_threads {
        v.insert(3, ServerConfig::flash_mt());
    }
    v
}

/// Runs the single-file test on `machine`, returning the two panels.
pub fn run(machine: &MachineConfig, fig_id: &str, scale: Scale) -> Vec<Figure> {
    let (bw_sizes, rate_sizes): (Vec<u64>, Vec<u64>) = match scale {
        Scale::Full => (BANDWIDTH_SIZES_KB.to_vec(), RATE_SIZES_KB.to_vec()),
        Scale::Quick => (vec![5, 100, 200], vec![1, 10]),
    };
    let params = RunParams {
        warmup: SimTime::from_millis(500),
        window: match scale {
            Scale::Full => SimTime::from_secs(4),
            Scale::Quick => SimTime::from_secs(2),
        },
        prewarm_cache: true,
    };
    let fleet = ClientFleet {
        clients: 32,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let mut bw = Figure::new(
        format!("{fig_id}-bandwidth"),
        format!("single-file test on {}: output bandwidth", machine.os.name),
        "File size (KB)",
        "Bandwidth (Mb/s)",
    );
    let mut rate = Figure::new(
        format!("{fig_id}-rate"),
        format!("single-file test on {}: connection rate", machine.os.name),
        "File size (KB)",
        "Connection rate (req/s)",
    );
    for cfg in lineup(machine.os.kernel_threads) {
        let mut bw_series = Series::new(cfg.name.clone());
        let mut rate_series = Series::new(cfg.name.clone());
        for &kb in &bw_sizes {
            let trace = Rc::new(Trace::single_file(kb * 1024));
            let (r, _) = run_one(machine, &cfg, &trace, &fleet, &params)
                .expect("single-file deploy cannot fail");
            bw_series.points.push((kb as f64, r.bandwidth_mbps));
            if rate_sizes.contains(&kb) {
                rate_series.points.push((kb as f64, r.requests_per_sec));
            }
        }
        for &kb in &rate_sizes {
            if rate_series.y_at(kb as f64).is_some() {
                continue;
            }
            let trace = Rc::new(Trace::single_file(kb * 1024));
            let (r, _) = run_one(machine, &cfg, &trace, &fleet, &params)
                .expect("single-file deploy cannot fail");
            rate_series.points.push((kb as f64, r.requests_per_sec));
        }
        rate_series
            .points
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN"));
        bw.series.push(bw_series);
        rate.series.push(rate_series);
    }
    vec![bw, rate]
}

/// Figure 6: Solaris.
pub fn fig06(scale: Scale) -> Vec<Figure> {
    run(&MachineConfig::solaris(), "fig06", scale)
}

/// Figure 7: FreeBSD.
pub fn fig07(scale: Scale) -> Vec<Figure> {
    run(&MachineConfig::freebsd(), "fig07", scale)
}
