//! Shape tests: the paper's qualitative claims, asserted on quick-scale
//! runs of every figure driver. These are the contract EXPERIMENTS.md
//! reports against.

use flash_experiments::{breakdown, dataset_sweep, single_file, trace_bars, wan, Scale};

#[test]
fn fig07_architecture_barely_matters_when_cached() {
    let figs = single_file::fig07(Scale::Quick);
    let rate = &figs[1];
    let flash = rate.series("Flash").unwrap().y_at(1.0).unwrap();
    let sped = rate.series("Flash-SPED").unwrap().y_at(1.0).unwrap();
    let mp = rate.series("Flash-MP").unwrap().y_at(1.0).unwrap();
    let apache = rate.series("Apache").unwrap().y_at(1.0).unwrap();
    // SPED edges out Flash (mincore overhead); MP trails slightly; all
    // Flash variants are within ~25% of each other; Apache is far behind.
    assert!(sped >= flash, "SPED {sped} >= Flash {flash}");
    assert!(flash > mp, "Flash {flash} > MP {mp}");
    assert!(mp > flash * 0.75, "MP within 25% of Flash");
    assert!(
        apache < flash * 0.55,
        "Apache {apache} far below Flash {flash}"
    );
    // Calibration: paper Figure 7 small-file rates are in the thousands.
    assert!(flash > 2_500.0 && flash < 5_000.0, "Flash rate {flash}");
}

#[test]
fn fig07_freebsd_large_file_bandwidth_band() {
    let figs = single_file::fig07(Scale::Quick);
    let bw = &figs[0];
    let flash = bw.series("Flash").unwrap().y_at(200.0).unwrap();
    // Paper: ~240 Mb/s; accept a generous band around it.
    assert!(
        flash > 180.0 && flash < 330.0,
        "Flash 200KB bandwidth {flash}"
    );
}

#[test]
fn fig07_zeus_alignment_dip_recovers() {
    let figs = single_file::fig07(Scale::Quick);
    let bw = &figs[0];
    let at = |label: &str, x: f64| bw.series(label).unwrap().y_at(x).unwrap();
    // The §5.5 misalignment penalty: Zeus visibly below Flash at 100 KB,
    // relatively closer again at 200 KB.
    let gap_100 = 1.0 - at("Zeus", 100.0) / at("Flash", 100.0);
    let gap_200 = 1.0 - at("Zeus", 200.0) / at("Flash", 200.0);
    assert!(
        gap_100 > 0.08,
        "Zeus should dip at 100KB (gap {gap_100:.3})"
    );
    assert!(gap_200 < gap_100, "dip should shrink by 200KB");
}

#[test]
fn fig06_solaris_is_far_slower_than_freebsd() {
    let sol = single_file::fig06(Scale::Quick);
    let bsd = single_file::fig07(Scale::Quick);
    let sol_bw = sol[0].series("Flash").unwrap().y_at(200.0).unwrap();
    let bsd_bw = bsd[0].series("Flash").unwrap().y_at(200.0).unwrap();
    // Paper: Solaris results are up to ~50% lower than FreeBSD.
    assert!(
        sol_bw < bsd_bw * 0.6,
        "Solaris {sol_bw} vs FreeBSD {bsd_bw}"
    );
    // Paper Figure 6: ~110 Mb/s tops on Solaris.
    assert!(
        sol_bw > 70.0 && sol_bw < 150.0,
        "Solaris bandwidth {sol_bw}"
    );
    // MT exists on Solaris but not on FreeBSD 2.2.6.
    assert!(sol[0].series("Flash-MT").is_some());
    assert!(bsd[0].series("Flash-MT").is_none());
}

#[test]
fn fig08_flash_wins_both_traces_apache_trails() {
    let figs = trace_bars::fig08(Scale::Quick);
    for fig in &figs {
        let flash = fig.series("Flash").unwrap().y_at(0.0).unwrap();
        let apache = fig.series("Apache").unwrap().y_at(0.0).unwrap();
        assert!(
            flash > apache * 1.3,
            "{}: Flash {flash} vs Apache {apache}",
            fig.id
        );
    }
    // SPED is relatively much better on Owlnet (cached) than on CS
    // (disk-bound): compare its share of Flash's bandwidth.
    let share = |fig: &flash_experiments::Figure| {
        fig.series("Flash-SPED").unwrap().y_at(0.0).unwrap()
            / fig.series("Flash").unwrap().y_at(0.0).unwrap()
    };
    let cs = share(&figs[0]);
    let owl = share(&figs[1]);
    assert!(
        owl > cs + 0.2,
        "SPED/Flash share: CS {cs:.2} vs Owlnet {owl:.2}"
    );
}

#[test]
fn fig09_sped_collapses_when_disk_bound_flash_does_not() {
    let fig = dataset_sweep::fig09(Scale::Quick);
    let at = |label: &str, x: f64| fig.series(label).unwrap().y_at(x).unwrap();
    // Cached regime: Flash within a few percent of SPED.
    assert!(at("Flash", 15.0) > at("Flash-SPED", 15.0) * 0.9);
    // Disk-bound regime: SPED collapses; Flash stays well above and
    // meets/exceeds MP.
    assert!(at("Flash-SPED", 150.0) < at("Flash-SPED", 15.0) * 0.45);
    assert!(at("Flash", 150.0) > at("Flash-SPED", 150.0) * 1.5);
    assert!(at("Flash", 150.0) >= at("Flash-MP", 150.0) * 0.95);
    // Everyone declines past the cache size.
    for s in &fig.series {
        assert!(
            s.y_at(150.0).unwrap() < s.y_at(15.0).unwrap(),
            "{} should decline",
            s.label
        );
    }
}

#[test]
fn fig10_mt_is_comparable_to_flash_on_solaris() {
    let fig = dataset_sweep::fig10(Scale::Quick);
    let at = |label: &str, x: f64| fig.series(label).unwrap().y_at(x).unwrap();
    for x in [15.0, 150.0] {
        let flash = at("Flash", x);
        let mt = at("Flash-MT", x);
        assert!(
            (mt - flash).abs() < flash * 0.25,
            "MT {mt} vs Flash {flash} at {x} MB"
        );
    }
    // The Solaris sweep tops far below the FreeBSD one.
    let bsd = dataset_sweep::fig09(Scale::Quick);
    assert!(fig.series("Flash").unwrap().y_max() < bsd.series("Flash").unwrap().y_max() * 0.7);
}

#[test]
fn fig11_caches_all_contribute_pathname_most() {
    let fig = breakdown::fig11(Scale::Quick);
    let all = fig.series("all (Flash)").unwrap().y_at(1.0).unwrap();
    let none = fig.series("no caching").unwrap().y_at(1.0).unwrap();
    // Paper: "Without optimizations Flash's small file performance would
    // drop in half."
    assert!(
        none < all * 0.72 && none > all * 0.35,
        "no-caching {none} vs all {all}"
    );
}

#[test]
fn fig12_mp_declines_with_clients_amped_stays_flat() {
    let fig = wan::fig12(Scale::Quick);
    let at = |label: &str, x: f64| fig.series(label).unwrap().y_at(x).unwrap();
    // AMPED/SPED stable within 15% across the sweep.
    for label in ["Flash", "Flash-SPED"] {
        let lo = at(label, 16.0).min(at(label, 400.0));
        let hi = at(label, 16.0).max(at(label, 400.0));
        assert!(hi - lo < hi * 0.2, "{label} should stay flat ({lo}..{hi})");
    }
    // MT declines gradually; MP declines dramatically.
    assert!(at("Flash-MT", 400.0) < at("Flash-MT", 16.0));
    assert!(at("Flash-MT", 400.0) > at("Flash-MT", 16.0) * 0.7);
    assert!(at("Flash-MP", 400.0) < at("Flash-MP", 16.0) * 0.55);
}
