//! Shape tests for the ablation studies.

use flash_experiments::{ablation, Scale};

#[test]
fn helper_pool_saturates_quickly() {
    let fig = ablation::helper_pool_sweep(Scale::Quick);
    let s = fig.series("Flash").expect("series");
    let one = s.y_at(1.0).expect("pool=1");
    let eight = s.y_at(8.0).expect("pool=8");
    let thirty_two = s.y_at(32.0).expect("pool=32");
    // One helper serializes the disk like SPED-with-extra-steps; a small
    // pool buys most of the win ("enough helpers to keep the disk busy").
    assert!(eight > one * 1.15, "8 helpers {eight} vs 1 helper {one}");
    let gain_8_to_32 = thirty_two / eight;
    assert!(
        gain_8_to_32 < 1.5,
        "returns must diminish: 8→32 gave {gain_8_to_32:.2}x"
    );
}

#[test]
fn alignment_padding_pays_for_itself() {
    let fig = ablation::alignment_ablation(Scale::Quick);
    let aligned = fig.series("aligned").unwrap();
    let raw = fig.series("misaligned").unwrap();
    for &(x, y) in &aligned.points {
        let r = raw.y_at(x).unwrap();
        assert!(y > r, "aligned {y} should beat misaligned {r} at {x} KB");
    }
    // The penalty is per body byte, so the relative gap grows with size.
    let gap = |x: f64| 1.0 - raw.y_at(x).unwrap() / aligned.y_at(x).unwrap();
    assert!(gap(50.0) > gap(5.0), "gap must grow with file size");
}

#[test]
fn clook_beats_fcfs_for_amped() {
    let fig = ablation::disk_scheduler_ablation(Scale::Quick);
    let clook = fig.series("C-LOOK").unwrap().y_at(0.0).unwrap();
    let fcfs = fig.series("FCFS").unwrap().y_at(0.0).unwrap();
    assert!(clook > fcfs, "C-LOOK {clook} vs FCFS {fcfs}");
}

#[test]
fn heuristic_close_to_mincore_and_both_beat_none() {
    let fig = ablation::residency_policy(Scale::Quick);
    let at = |label: &str, x: f64| fig.series(label).unwrap().y_at(x).unwrap();
    // Cached: all three are close (residency checks barely matter).
    let spread = (at("mincore (Flash)", 30.0) - at("none (SPED)", 30.0)).abs();
    assert!(spread < at("none (SPED)", 30.0) * 0.15);
    // Disk-bound: any residency policy beats none by a wide margin, and
    // the §5.7 heuristic lands in mincore's neighbourhood.
    let mincore = at("mincore (Flash)", 150.0);
    let heur = at("heuristic (§5.7)", 150.0);
    let none = at("none (SPED)", 150.0);
    assert!(mincore > none * 1.5, "mincore {mincore} vs none {none}");
    assert!(heur > none * 1.3, "heuristic {heur} vs none {none}");
    assert!(
        (heur - mincore).abs() < mincore * 0.35,
        "heuristic {heur} should be near mincore {mincore}"
    );
}
