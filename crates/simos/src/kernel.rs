//! The simulated kernel: scheduler, syscalls, page cache, disk and wire.
//!
//! Server logic runs "inside" simulated processes: at each dispatch the
//! scheduler hands the process its previous syscall's [`Completion`], the
//! logic charges CPU with [`Kernel::cpu`] and issues exactly one syscall,
//! and the kernel either re-queues the process (result available) or blocks
//! it. All costs come from the machine's
//! [`OsProfile`](crate::profile::OsProfile).
//!
//! The single semantic the whole paper hinges on is reproduced here
//! faithfully: **socket operations honour non-blocking mode, file
//! operations do not**. A `writev` of file-backed pages that are not in the
//! page cache blocks the calling process until the disk read completes —
//! even for a "non-blocking" socket — exactly like `mmap`'d file I/O on
//! 1999-era UNIX (§3.3). SPED stalls on this; AMPED routes the fault to a
//! helper first.

use std::collections::VecDeque;

use flash_simcore::time::{wire_time, Nanos};
use flash_simcore::{EventQueue, SimTime};

use crate::config::{MachineConfig, PAGE_SIZE};
use crate::disk::{Disk, DiskReq};
use crate::fs::{FileSystem, META_FILE};
use crate::ids::{AgentId, ConnId, Fd, FileId, ListenId, Pid, PipeId};
use crate::metrics::Metrics;
use crate::net::{ConnState, Connection, Listen};
use crate::pagecache::PageCache;
use crate::proc::{Proc, ProcKind, ProcState, ProcTable};
use crate::syscall::{Blocking, Completion, PendingOp, PipeMsg};

/// Internal kernel events.
#[derive(Debug)]
pub(crate) enum KEvent {
    /// Run the next process on the CPU.
    Dispatch,
    /// The active disk request finished.
    DiskDone,
    /// A wire chunk arrived at the client.
    WireDelivered { conn: ConnId, bytes: u64 },
    /// Request bytes arrived at the server socket.
    InboundArrive {
        conn: ConnId,
        bytes: u64,
        token: u64,
    },
    /// A connection attempt reached the listen socket.
    SynArrive {
        listen: ListenId,
        agent: AgentId,
        client_bps: u64,
        rtt_ns: Nanos,
    },
    /// An agent timer fired.
    AgentTimer { agent: AgentId, token: u64 },
    /// A process `sleep` expired.
    ProcTimer(Pid),
}

/// Events delivered to external agents (simulated client machines).
#[derive(Debug, Clone)]
pub enum AgentEvent {
    /// The connection is established (client-side `connect` returned).
    Connected(ConnId),
    /// Response bytes arrived at the client.
    Data {
        /// Connection the bytes arrived on.
        conn: ConnId,
        /// Number of bytes.
        bytes: u64,
    },
    /// A full response (as marked by the server) has arrived.
    ResponseComplete {
        /// Connection the response arrived on.
        conn: ConnId,
    },
    /// The connection is fully closed.
    Closed(ConnId),
    /// A timer requested via [`Kernel::agent_timer`] fired.
    Timer(u64),
}

/// What to do with the current process when its dispatch ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PostRun {
    Requeue,
    Block,
    Exit,
}

/// Source of the body bytes for [`Kernel::sys_send`].
#[derive(Debug, Clone, Copy)]
pub enum SendSrc {
    /// File-backed data (sendfile/mmap-style): pages must be resident or
    /// the caller blocks on the disk — regardless of non-blocking mode.
    File {
        /// Source file.
        file: FileId,
        /// Byte offset of the first body byte.
        offset: u64,
        /// Body length in bytes.
        len: u64,
    },
    /// Application-memory data (CGI output, app buffers): never faults,
    /// but pays the user-space copy on top of the stack cost.
    Mem {
        /// Body length in bytes.
        len: u64,
    },
}

#[derive(Debug, Default)]
struct Pipe {
    msgs: VecDeque<PipeMsg>,
    read_waiters: VecDeque<Pid>,
}

/// The simulated kernel. See the module docs for the execution model.
pub struct Kernel {
    /// Machine description (OS profile, memory, disk, net).
    pub cfg: MachineConfig,
    /// Future-event calendar.
    pub(crate) queue: EventQueue<KEvent>,
    /// Process table.
    pub procs: ProcTable,
    /// Filesystem (files must be created before the run starts).
    pub fs: FileSystem,
    /// Unified page cache.
    pub cache: PageCache,
    /// Disk device.
    pub disk: Disk,
    /// Run metrics.
    pub metrics: Metrics,

    conns: Vec<Connection>,
    listens: Vec<Listen>,
    pipes: Vec<Pipe>,

    nic_free_at: SimTime,

    run_queue: VecDeque<Pid>,
    dispatch_pending: bool,
    cpu_busy_until: SimTime,
    last_ran: Option<Pid>,

    cur: Option<Pid>,
    cur_cpu: Nanos,
    cur_syscalled: bool,
    post: PostRun,

    select_waiters: Vec<Pid>,
    pub(crate) agent_outbox: VecDeque<(AgentId, AgentEvent)>,

    app_mem_bytes: u64,
    overcommit_mb: u64,
    next_group: u32,
}

impl Kernel {
    /// Creates a kernel for the given machine. The page cache starts at
    /// full capacity; spawning processes or reserving application memory
    /// shrinks it.
    pub fn new(cfg: MachineConfig) -> Self {
        let cache = PageCache::new(cfg.memory.cache_pages(0));
        let disk = Disk::new(cfg.disk.clone());
        Kernel {
            cfg,
            queue: EventQueue::new(),
            procs: ProcTable::default(),
            fs: FileSystem::new(),
            cache,
            disk,
            metrics: Metrics::default(),
            conns: Vec::new(),
            listens: Vec::new(),
            pipes: Vec::new(),
            nic_free_at: SimTime::ZERO,
            run_queue: VecDeque::new(),
            dispatch_pending: false,
            cpu_busy_until: SimTime::ZERO,
            last_ran: None,
            cur: None,
            cur_cpu: 0,
            cur_syscalled: false,
            post: PostRun::Block,
            select_waiters: Vec::new(),
            agent_outbox: VecDeque::new(),
            app_mem_bytes: 0,
            overcommit_mb: 0,
            next_group: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Allocates a fresh address-space group id.
    pub fn new_group(&mut self) -> u32 {
        let g = self.next_group;
        self.next_group += 1;
        g
    }

    /// Reserves `bytes` of server application memory (user-level caches);
    /// the page cache shrinks accordingly (§4.2 "Application-level
    /// caching": cache memory competes with the filesystem cache).
    pub fn set_app_mem(&mut self, bytes: u64) {
        self.app_mem_bytes = bytes;
        self.recompute_memory();
    }

    /// Creates a listening socket.
    pub fn add_listen(&mut self) -> ListenId {
        let id = ListenId(self.listens.len() as u32);
        let backlog = self.cfg.net.backlog;
        self.listens.push(Listen::new(id, backlog));
        id
    }

    /// Creates a pipe.
    pub fn add_pipe(&mut self) -> PipeId {
        let id = PipeId(self.pipes.len() as u32);
        self.pipes.push(Pipe::default());
        id
    }

    /// Read access to a connection (server logic uses this for state
    /// checks; all mutation goes through syscalls).
    pub fn conn(&self, c: ConnId) -> &Connection {
        &self.conns[c.0 as usize]
    }

    /// Read-only residency query over `[offset, offset+len)` of `file` —
    /// the information `mincore(2)` returns. Server logic that models a
    /// `mincore` call charges its CPU cost via [`Kernel::cpu`] and uses
    /// this to branch; the call itself can never block, so no dispatch
    /// round-trip is needed.
    pub fn residency(&self, file: FileId, offset: u64, len: u64) -> bool {
        let (first, n) = page_range(offset, len);
        self.cache.resident_count(file, first, n) == n
    }

    /// Marks "everything enqueued so far on `c` is the end of a response";
    /// the client agent receives [`AgentEvent::ResponseComplete`] when the
    /// last byte arrives. Call after the final `writev` of a response.
    ///
    /// The final bytes may already have drained to the client by the time
    /// the server marks the boundary (the wire runs concurrently with the
    /// server's dispatch), so crossing is checked immediately as well as
    /// on every future delivery.
    pub fn mark_response_boundary(&mut self, c: ConnId) {
        let conn = &mut self.conns[c.0 as usize];
        conn.mark_response_boundary();
        let crossed = conn.deliver(0);
        let agent = conn.agent;
        for _ in 0..crossed {
            self.metrics.requests.inc();
            self.agent_outbox
                .push_back((agent, AgentEvent::ResponseComplete { conn: c }));
        }
    }

    pub(crate) fn recompute_memory(&mut self) {
        let consumed = self.procs.resident_bytes() + self.app_mem_bytes;
        self.cache
            .set_capacity(self.cfg.memory.cache_pages(consumed));
        self.overcommit_mb = self.cfg.memory.overcommit_bytes(consumed) / (1024 * 1024);
    }

    // ---------------------------------------------------------------
    // Scheduler
    // ---------------------------------------------------------------

    pub(crate) fn spawn(&mut self, p: Proc) -> Pid {
        let pid = self.procs.add(p);
        self.recompute_memory();
        self.make_runnable(pid);
        pid
    }

    fn make_runnable(&mut self, pid: Pid) {
        let p = self.procs.get_mut(pid);
        if p.state == ProcState::Exited {
            return;
        }
        p.state = ProcState::Runnable;
        self.run_queue.push_back(pid);
        self.ensure_dispatch();
    }

    /// Wakes `pid` with `completion` (it will be delivered at its next
    /// dispatch).
    fn wake_with(&mut self, pid: Pid, completion: Completion) {
        let p = self.procs.get_mut(pid);
        debug_assert!(p.completion.is_none(), "overwriting completion of {pid:?}");
        p.completion = Some(completion);
        self.make_runnable(pid);
    }

    fn ensure_dispatch(&mut self) {
        if self.dispatch_pending || self.run_queue.is_empty() {
            return;
        }
        let at = self.queue.now().max(self.cpu_busy_until);
        self.queue.schedule_at(at, KEvent::Dispatch);
        self.dispatch_pending = true;
    }

    /// Pops the next runnable process and prepares its dispatch context.
    /// Returns the pid and the completion to deliver, or `None` if the run
    /// queue is empty (CPU goes idle).
    pub(crate) fn begin_dispatch(&mut self) -> Option<(Pid, Completion)> {
        self.dispatch_pending = false;
        let pid = loop {
            let p = self.run_queue.pop_front()?;
            if self.procs.get(p).state == ProcState::Runnable {
                break p;
            }
            // Stale queue entry (process exited while queued): skip.
        };
        let switch = self.switch_cost(pid);
        if switch > 0 {
            self.metrics.ctx_switches.inc();
        }
        self.cur = Some(pid);
        self.cur_syscalled = false;
        self.post = PostRun::Block;
        let p = self.procs.get_mut(pid);
        self.cur_cpu = switch + p.pending_charge;
        p.pending_charge = 0;
        let completion = p.completion.take().unwrap_or(Completion::Start);
        Some((pid, completion))
    }

    /// Finishes the dispatch started by [`Kernel::begin_dispatch`]:
    /// advances the CPU-busy horizon, applies the post-run action, and
    /// schedules the next dispatch if work remains.
    pub(crate) fn end_dispatch(&mut self) {
        let pid = self.cur.take().expect("end_dispatch without begin");
        assert!(
            self.cur_syscalled || self.post == PostRun::Exit,
            "process {:?} ({}) returned without a syscall or exit",
            pid,
            self.procs.get(pid).label
        );
        let t_end = self.queue.now() + self.cur_cpu;
        self.cpu_busy_until = t_end;
        self.metrics.cpu_busy_ns += self.cur_cpu;
        match self.post {
            PostRun::Requeue => {
                let p = self.procs.get_mut(pid);
                p.state = ProcState::Runnable;
                self.run_queue.push_back(pid);
            }
            PostRun::Block => {}
            PostRun::Exit => {
                self.procs.get_mut(pid).state = ProcState::Exited;
                self.recompute_memory();
            }
        }
        self.last_ran = Some(pid);
        self.ensure_dispatch();
    }

    fn switch_cost(&mut self, pid: Pid) -> Nanos {
        let Some(prev) = self.last_ran else {
            return 0;
        };
        if prev == pid {
            return 0;
        }
        let prev_group = self.procs.get(prev).group;
        let p = self.procs.get(pid);
        let base = if p.group == prev_group && p.kind == ProcKind::Thread {
            self.cfg.os.thread_switch_ns
        } else {
            self.cfg.os.ctx_switch_ns
        };
        // Crude paging model: overcommitted process memory makes address-
        // space switches progressively more expensive (TLB/working-set
        // reload from swap). Only matters with hundreds of processes.
        let paging = self.cfg.os.paging_ns_per_overcommitted_mb * self.overcommit_mb;
        base + paging.min(3_000_000)
    }

    fn cur_pid(&self) -> Pid {
        self.cur.expect("syscall outside a dispatch")
    }

    fn note_syscall(&mut self) {
        assert!(
            !self.cur_syscalled,
            "process {:?} issued a second syscall in one dispatch",
            self.cur_pid()
        );
        self.cur_syscalled = true;
    }

    fn finish_now(&mut self, completion: Completion) {
        let pid = self.cur_pid();
        let p = self.procs.get_mut(pid);
        debug_assert!(p.completion.is_none());
        p.completion = Some(completion);
        self.post = PostRun::Requeue;
    }

    fn finish_block(&mut self, state: ProcState) {
        let pid = self.cur_pid();
        self.procs.get_mut(pid).state = state;
        self.post = PostRun::Block;
    }

    // ---------------------------------------------------------------
    // Syscalls (called by server logic during a dispatch)
    // ---------------------------------------------------------------

    /// Charges user-level CPU time to the current dispatch.
    pub fn cpu(&mut self, ns: Nanos) {
        assert!(self.cur.is_some(), "cpu() outside a dispatch");
        self.cur_cpu += ns;
    }

    /// Terminates the current process.
    pub fn sys_exit(&mut self) {
        self.note_syscall();
        self.post = PostRun::Exit;
    }

    /// Yields the CPU, staying runnable (delivers `WouldBlock`).
    pub fn sys_yield(&mut self) {
        self.note_syscall();
        self.finish_now(Completion::WouldBlock);
    }

    /// Sleeps for `ns` (delivers `TimerFired`).
    pub fn sys_sleep(&mut self, ns: Nanos) {
        self.note_syscall();
        self.cur_cpu += self.cfg.os.syscall_ns;
        let pid = self.cur_pid();
        self.queue.schedule_in(ns.max(1), KEvent::ProcTimer(pid));
        self.finish_block(ProcState::Sleeping);
    }

    /// `accept(2)`: dequeues a pending connection.
    pub fn sys_accept(&mut self, listen: ListenId, blocking: Blocking) {
        self.note_syscall();
        self.cur_cpu += self.cfg.os.accept_ns;
        let l = &mut self.listens[listen.0 as usize];
        if let Some(conn) = l.queue.pop_front() {
            self.metrics.conns_accepted.inc();
            self.finish_now(Completion::Accepted(conn));
        } else {
            match blocking {
                Blocking::No => self.finish_now(Completion::WouldBlock),
                Blocking::Yes => {
                    let pid = self.cur_pid();
                    self.listens[listen.0 as usize]
                        .accept_waiters
                        .push_back(pid);
                    self.finish_block(ProcState::BlockedAccept);
                }
            }
        }
    }

    /// `read(2)` on a connection: consumes available request bytes.
    pub fn sys_conn_read(&mut self, conn: ConnId, blocking: Blocking) {
        self.note_syscall();
        self.cur_cpu += self.cfg.os.sock_read_ns;
        let c = &mut self.conns[conn.0 as usize];
        if c.in_avail > 0 {
            let n = c.in_avail;
            c.in_avail = 0;
            let tokens: Vec<u64> = c.in_tokens.drain(..).collect();
            self.cur_cpu += (n as f64 * self.cfg.os.net_per_byte_ns) as Nanos;
            self.finish_now(Completion::ConnRead {
                conn,
                bytes: n,
                tokens,
            });
        } else if c.state != ConnState::Open {
            self.finish_now(Completion::ConnRead {
                conn,
                bytes: 0,
                tokens: Vec::new(),
            });
        } else {
            match blocking {
                Blocking::No => self.finish_now(Completion::WouldBlock),
                Blocking::Yes => {
                    let pid = self.cur_pid();
                    self.conns[conn.0 as usize].read_waiter = Some(pid);
                    self.finish_block(ProcState::BlockedConnRead(conn));
                }
            }
        }
    }

    /// `writev(2)`: sends `hdr_bytes` of header plus a body from `src`.
    ///
    /// Socket-full honours `blocking`; a page fault on file-backed data
    /// blocks unconditionally (see module docs). `aligned` is the §5.5
    /// byte-position alignment of the header: misaligned headers make the
    /// kernel's copy of the *body* regions more expensive.
    pub fn sys_send(
        &mut self,
        conn: ConnId,
        hdr_bytes: u64,
        src: SendSrc,
        aligned: bool,
        blocking: Blocking,
    ) {
        self.note_syscall();
        self.cur_cpu += self.cfg.os.writev_ns;
        let space = self.conns[conn.0 as usize].space();
        if space == 0 {
            match blocking {
                Blocking::No => self.finish_now(Completion::WouldBlock),
                Blocking::Yes => {
                    let pid = self.cur_pid();
                    self.conns[conn.0 as usize].write_waiter = Some(pid);
                    self.finish_block(ProcState::BlockedConnWrite(conn));
                }
            }
            return;
        }
        let hdr_acc = hdr_bytes.min(space);
        let body_space = space - hdr_acc;
        match src {
            SendSrc::Mem { len } => {
                let body_acc = len.min(body_space);
                // Copy from app memory into the socket: user copy + stack.
                let cost = ((hdr_acc + body_acc) as f64 * self.cfg.os.net_per_byte_ns
                    + body_acc as f64 * self.cfg.os.file_copy_per_byte_ns
                    + self.misalign_cost(hdr_acc, body_acc, aligned))
                    as Nanos;
                self.cur_cpu += cost;
                self.enqueue_and_drain(conn, hdr_acc + body_acc);
                self.finish_now(Completion::Written {
                    conn,
                    hdr_bytes: hdr_acc,
                    body_bytes: body_acc,
                });
            }
            SendSrc::File { file, offset, len } => {
                let body_acc = len.min(body_space);
                let (first_page, npages) = page_range(offset, body_acc);
                match self.missing_range(file, first_page, npages) {
                    None => {
                        // All pages resident: touch them (LRU promote) and
                        // copy straight out of the page cache (mmap path —
                        // no user-space copy).
                        self.touch_pages(file, first_page, npages);
                        let cost = ((hdr_acc + body_acc) as f64 * self.cfg.os.net_per_byte_ns
                            + self.misalign_cost(hdr_acc, body_acc, aligned))
                            as Nanos;
                        self.cur_cpu += cost;
                        self.enqueue_and_drain(conn, hdr_acc + body_acc);
                        self.finish_now(Completion::Written {
                            conn,
                            hdr_bytes: hdr_acc,
                            body_bytes: body_acc,
                        });
                    }
                    Some((miss_first, miss_n)) => {
                        // Page fault: the process blocks on the disk no
                        // matter what — this is how SPED stalls.
                        let pid = self.cur_pid();
                        self.procs.get_mut(pid).pending_op = Some(PendingOp::Send {
                            conn,
                            file,
                            hdr_bytes: hdr_acc,
                            body_bytes: body_acc,
                            first_page,
                            npages,
                            aligned,
                        });
                        self.request_disk(file, miss_first, miss_n, pid);
                        self.finish_block(ProcState::BlockedDisk);
                    }
                }
            }
        }
    }

    /// `close(2)` on a connection; buffered data still drains to the
    /// client before the FIN.
    pub fn sys_close(&mut self, conn: ConnId) {
        self.note_syscall();
        self.cur_cpu += self.cfg.os.close_ns;
        let c = &mut self.conns[conn.0 as usize];
        if c.state == ConnState::Open {
            c.state = ConnState::Closing;
        }
        if self.conns[conn.0 as usize].sendbuf_used == 0 {
            self.finalize_close(conn);
        }
        self.finish_now(Completion::Closed(conn));
    }

    /// `stat(2)`/`open(2)`: pathname translation. CPU cost scales with the
    /// number of path components; a cold inode/directory page costs a disk
    /// read and **blocks the caller unconditionally** — this is the work
    /// Flash's name-translation helpers absorb.
    pub fn sys_stat(&mut self, file: FileId) {
        self.note_syscall();
        let f = self.fs.get(file);
        let meta_page = f.meta_page();
        let components = f.components as u64;
        self.cur_cpu += self.cfg.os.stat_ns + components * self.cfg.os.path_component_ns;
        if self.cache.touch((META_FILE, meta_page)) {
            self.finish_now(Completion::Stated { file });
        } else {
            let pid = self.cur_pid();
            self.procs.get_mut(pid).pending_op = Some(PendingOp::Stat { file });
            self.request_disk(META_FILE, meta_page, 1, pid);
            self.finish_block(ProcState::BlockedDisk);
        }
    }

    /// `mmap(2)`: establishes a mapping (cost only; pages fault lazily).
    pub fn sys_mmap(&mut self) {
        self.note_syscall();
        self.cur_cpu += self.cfg.os.mmap_ns;
        self.finish_now(Completion::Mapped);
    }

    /// `munmap(2)`.
    pub fn sys_munmap(&mut self) {
        self.note_syscall();
        self.cur_cpu += self.cfg.os.munmap_ns;
        self.finish_now(Completion::Mapped);
    }

    /// `mincore(2)`: residency of `[offset, offset+len)` of `file`,
    /// *without* promoting the pages (it must not perturb replacement).
    pub fn sys_mincore(&mut self, file: FileId, offset: u64, len: u64) {
        self.note_syscall();
        let (first, n) = page_range(offset, len);
        self.cur_cpu += self.cfg.os.mincore_ns + n * self.cfg.os.mincore_per_page_ns;
        let resident = self.cache.resident_count(file, first, n) == n;
        self.finish_now(Completion::Residency { resident });
    }

    /// Reads `[offset, offset+len)` of `file`: touches pages, faulting
    /// missing ones from disk (blocking the caller). With `copy` the data
    /// is also copied to a user buffer (`read(2)` semantics, as used by
    /// servers without mmap); without, it is a pure page touch (what
    /// AMPED helpers do to warm the cache).
    pub fn sys_file_read(&mut self, file: FileId, offset: u64, len: u64, copy: bool) {
        self.note_syscall();
        self.cur_cpu += self.cfg.os.syscall_ns;
        let (first, n) = page_range(offset, len);
        match self.missing_range(file, first, n) {
            None => {
                self.touch_pages(file, first, n);
                if copy {
                    self.cur_cpu += (len as f64 * self.cfg.os.file_copy_per_byte_ns) as Nanos;
                }
                self.finish_now(Completion::FileRead { file, bytes: len });
            }
            Some((miss_first, miss_n)) => {
                let pid = self.cur_pid();
                self.procs.get_mut(pid).pending_op = Some(PendingOp::FileRead {
                    file,
                    first_page: first,
                    npages: n,
                    bytes: len,
                    copy,
                });
                self.request_disk(file, miss_first, miss_n, pid);
                self.finish_block(ProcState::BlockedDisk);
            }
        }
    }

    /// Writes a message into a pipe, waking a blocked reader if any.
    pub fn sys_pipe_send(&mut self, pipe: PipeId, msg: PipeMsg) {
        self.note_syscall();
        self.cur_cpu += self.cfg.os.syscall_ns + self.cfg.os.pipe_ns;
        let p = &mut self.pipes[pipe.0 as usize];
        p.msgs.push_back(msg);
        if let Some(reader) = p.read_waiters.pop_front() {
            let msg = self.pipes[pipe.0 as usize]
                .msgs
                .pop_front()
                .expect("just pushed");
            // The reader pays its wakeup copy when it runs.
            self.procs.get_mut(reader).pending_charge = self.cfg.os.pipe_ns;
            self.wake_with(reader, Completion::PipeMsg { pipe, msg });
        } else {
            self.notify_fd_ready(Fd::Pipe(pipe));
        }
        self.finish_now(Completion::PipeSent);
    }

    /// Reads a message from a pipe.
    pub fn sys_pipe_recv(&mut self, pipe: PipeId, blocking: Blocking) {
        self.note_syscall();
        self.cur_cpu += self.cfg.os.syscall_ns + self.cfg.os.pipe_ns;
        let p = &mut self.pipes[pipe.0 as usize];
        if let Some(msg) = p.msgs.pop_front() {
            self.finish_now(Completion::PipeMsg { pipe, msg });
        } else {
            match blocking {
                Blocking::No => self.finish_now(Completion::WouldBlock),
                Blocking::Yes => {
                    let pid = self.cur_pid();
                    self.pipes[pipe.0 as usize].read_waiters.push_back(pid);
                    self.finish_block(ProcState::BlockedPipe(pipe));
                }
            }
        }
    }

    /// `select(2)`: returns the ready subset of `interests`, or blocks
    /// until one becomes ready. Cost scales with the interest-set size
    /// (the §6.4 effect: with many connections each call is expensive, but
    /// many ready fds amortize it).
    pub fn sys_select(&mut self, interests: Vec<Fd>) {
        self.note_syscall();
        self.cur_cpu +=
            self.cfg.os.select_ns + interests.len() as u64 * self.cfg.os.select_per_fd_ns;
        self.metrics.select_calls.inc();
        let ready: Vec<Fd> = interests
            .iter()
            .copied()
            .filter(|fd| self.fd_ready(*fd))
            .collect();
        if !ready.is_empty() {
            self.metrics.select_ready_fds.add(ready.len() as u64);
            self.finish_now(Completion::SelectReady(ready));
        } else {
            let pid = self.cur_pid();
            self.procs.get_mut(pid).select_interest = interests;
            self.select_waiters.push(pid);
            self.finish_block(ProcState::BlockedSelect);
        }
    }

    fn misalign_cost(&self, hdr: u64, body: u64, aligned: bool) -> f64 {
        if aligned || hdr == 0 {
            0.0
        } else {
            body as f64 * self.cfg.os.misalign_extra_per_byte_ns
        }
    }

    // ---------------------------------------------------------------
    // Readiness
    // ---------------------------------------------------------------

    fn fd_ready(&self, fd: Fd) -> bool {
        match fd {
            Fd::Listen(l) => !self.listens[l.0 as usize].queue.is_empty(),
            Fd::ConnRead(c) => {
                let conn = &self.conns[c.0 as usize];
                conn.in_avail > 0 || conn.state != ConnState::Open
            }
            Fd::ConnWrite(c) => self.conns[c.0 as usize].space() > 0,
            Fd::Pipe(p) => !self.pipes[p.0 as usize].msgs.is_empty(),
        }
    }

    fn notify_fd_ready(&mut self, fd: Fd) {
        if self.select_waiters.is_empty() {
            return;
        }
        let mut woken = Vec::new();
        for (i, &pid) in self.select_waiters.iter().enumerate() {
            if self.procs.get(pid).select_interest.contains(&fd) {
                woken.push(i);
            }
        }
        // Wake in reverse index order so removal is stable.
        for &i in woken.iter().rev() {
            let pid = self.select_waiters.swap_remove(i);
            let interests = std::mem::take(&mut self.procs.get_mut(pid).select_interest);
            let ready: Vec<Fd> = interests
                .iter()
                .copied()
                .filter(|f| self.fd_ready(*f))
                .collect();
            debug_assert!(!ready.is_empty());
            self.metrics.select_ready_fds.add(ready.len() as u64);
            self.wake_with(pid, Completion::SelectReady(ready));
        }
    }

    // ---------------------------------------------------------------
    // Page cache & disk
    // ---------------------------------------------------------------

    fn touch_pages(&mut self, file: FileId, first: u64, n: u64) {
        for p in first..first + n {
            self.cache.touch((file, p));
        }
    }

    /// The contiguous page span covering all non-resident pages of the
    /// range, or `None` when everything is resident. Reading the whole
    /// span in one request models disk-read clustering.
    fn missing_range(&self, file: FileId, first: u64, n: u64) -> Option<(u64, u64)> {
        let mut lo = None;
        let mut hi = 0;
        for p in first..first + n {
            if !self.cache.resident((file, p)) {
                if lo.is_none() {
                    lo = Some(p);
                }
                hi = p;
            }
        }
        lo.map(|l| (l, hi - l + 1))
    }

    fn request_disk(&mut self, file: FileId, first: u64, n: u64, pid: Pid) {
        if self.disk.join_if_covered(file, first, n, pid) {
            return;
        }
        self.metrics.disk_reads.inc();
        self.metrics.disk_bytes.add(n * PAGE_SIZE);
        let req = DiskReq {
            file,
            first_page: first,
            npages: n,
            start_block: self.fs.block_of(file, first),
            waiters: vec![pid],
        };
        if let Some(delay) = self.disk.submit(req) {
            self.queue.schedule_in(delay, KEvent::DiskDone);
        }
    }

    pub(crate) fn handle_disk_done(&mut self) {
        let (done, next) = self.disk.complete();
        if let Some(delay) = next {
            self.queue.schedule_in(delay, KEvent::DiskDone);
        }
        for p in done.first_page..done.first_page + done.npages {
            self.cache.insert((done.file, p));
        }
        for pid in done.waiters {
            self.resume_after_disk(pid);
        }
    }

    fn resume_after_disk(&mut self, pid: Pid) {
        let op = self
            .procs
            .get_mut(pid)
            .pending_op
            .take()
            .expect("disk waiter without a pending op");
        match op {
            PendingOp::Stat { file } => {
                let meta = self.fs.get(file).meta_page();
                if self.cache.touch((META_FILE, meta)) {
                    self.wake_with(pid, Completion::Stated { file });
                } else {
                    // Evicted before we ran (extreme memory pressure):
                    // fault it again.
                    self.procs.get_mut(pid).pending_op = Some(PendingOp::Stat { file });
                    self.request_disk(META_FILE, meta, 1, pid);
                }
            }
            PendingOp::FileRead {
                file,
                first_page,
                npages,
                bytes,
                copy,
            } => match self.missing_range(file, first_page, npages) {
                None => {
                    self.touch_pages(file, first_page, npages);
                    if copy {
                        self.procs.get_mut(pid).pending_charge =
                            (bytes as f64 * self.cfg.os.file_copy_per_byte_ns) as Nanos;
                    }
                    self.wake_with(pid, Completion::FileRead { file, bytes });
                }
                Some((lo, n)) => {
                    self.procs.get_mut(pid).pending_op = Some(PendingOp::FileRead {
                        file,
                        first_page,
                        npages,
                        bytes,
                        copy,
                    });
                    self.request_disk(file, lo, n, pid);
                }
            },
            PendingOp::Send {
                conn,
                file,
                hdr_bytes,
                body_bytes,
                first_page,
                npages,
                aligned,
            } => match self.missing_range(file, first_page, npages) {
                None => {
                    self.touch_pages(file, first_page, npages);
                    let cost = ((hdr_bytes + body_bytes) as f64 * self.cfg.os.net_per_byte_ns
                        + self.misalign_cost(hdr_bytes, body_bytes, aligned))
                        as Nanos;
                    self.procs.get_mut(pid).pending_charge = cost;
                    self.enqueue_and_drain(conn, hdr_bytes + body_bytes);
                    self.wake_with(
                        pid,
                        Completion::Written {
                            conn,
                            hdr_bytes,
                            body_bytes,
                        },
                    );
                }
                Some((lo, n)) => {
                    self.procs.get_mut(pid).pending_op = Some(PendingOp::Send {
                        conn,
                        file,
                        hdr_bytes,
                        body_bytes,
                        first_page,
                        npages,
                        aligned,
                    });
                    self.request_disk(file, lo, n, pid);
                }
            },
        }
    }

    // ---------------------------------------------------------------
    // Wire
    // ---------------------------------------------------------------

    fn enqueue_and_drain(&mut self, conn: ConnId, bytes: u64) {
        self.conns[conn.0 as usize].enqueue(bytes);
        self.start_drain(conn);
    }

    fn start_drain(&mut self, conn: ConnId) {
        let now = self.queue.now();
        let c = &mut self.conns[conn.0 as usize];
        if c.inflight || c.state == ConnState::Closed {
            return;
        }
        let chunk = c.next_chunk();
        if chunk == 0 {
            return;
        }
        let start = now.max(self.nic_free_at);
        self.nic_free_at = start + wire_time(chunk, self.cfg.net.nic_bps);
        let done = start.max(c.link_free_at) + wire_time(chunk, c.client_bps);
        c.link_free_at = done;
        c.inflight = true;
        self.queue
            .schedule_at(done, KEvent::WireDelivered { conn, bytes: chunk });
    }

    pub(crate) fn handle_wire_delivered(&mut self, conn: ConnId, bytes: u64) {
        let (agent, crossed, remaining, closing) = {
            let c = &mut self.conns[conn.0 as usize];
            c.inflight = false;
            let crossed = c.deliver(bytes);
            (
                c.agent,
                crossed,
                c.sendbuf_used,
                c.state == ConnState::Closing,
            )
        };
        self.metrics.bytes_out.add(bytes);
        self.agent_outbox
            .push_back((agent, AgentEvent::Data { conn, bytes }));
        for _ in 0..crossed {
            self.metrics.requests.inc();
            self.agent_outbox
                .push_back((agent, AgentEvent::ResponseComplete { conn }));
        }
        // Send-buffer space opened up: wake a blocked writer (it retries
        // its write) or a selecting server.
        if let Some(w) = self.conns[conn.0 as usize].write_waiter.take() {
            self.wake_with(w, Completion::WouldBlock);
        } else {
            self.notify_fd_ready(Fd::ConnWrite(conn));
        }
        if remaining > 0 {
            self.start_drain(conn);
        } else if closing {
            self.finalize_close(conn);
        }
    }

    fn finalize_close(&mut self, conn: ConnId) {
        let c = &mut self.conns[conn.0 as usize];
        if c.state == ConnState::Closed {
            return;
        }
        c.state = ConnState::Closed;
        let agent = c.agent;
        self.agent_outbox
            .push_back((agent, AgentEvent::Closed(conn)));
    }

    pub(crate) fn handle_inbound(&mut self, conn: ConnId, bytes: u64, token: u64) {
        let c = &mut self.conns[conn.0 as usize];
        if c.state == ConnState::Closed {
            return;
        }
        c.in_avail += bytes;
        c.in_tokens.push_back(token);
        if let Some(r) = c.read_waiter.take() {
            let n = c.in_avail;
            c.in_avail = 0;
            let tokens: Vec<u64> = c.in_tokens.drain(..).collect();
            self.procs.get_mut(r).pending_charge =
                (n as f64 * self.cfg.os.net_per_byte_ns) as Nanos;
            self.wake_with(
                r,
                Completion::ConnRead {
                    conn,
                    bytes: n,
                    tokens,
                },
            );
        } else {
            self.notify_fd_ready(Fd::ConnRead(conn));
        }
    }

    pub(crate) fn handle_syn(
        &mut self,
        listen: ListenId,
        agent: AgentId,
        client_bps: u64,
        rtt_ns: Nanos,
    ) {
        if self.listens[listen.0 as usize].queue.len() >= self.listens[listen.0 as usize].backlog {
            self.metrics.syn_drops.inc();
            return;
        }
        let id = ConnId(self.conns.len() as u32);
        self.conns.push(Connection::new(
            id,
            agent,
            client_bps,
            rtt_ns,
            self.cfg.net.sendbuf_bytes,
        ));
        self.agent_outbox
            .push_back((agent, AgentEvent::Connected(id)));
        let l = &mut self.listens[listen.0 as usize];
        l.queue.push_back(id);
        if let Some(w) = l.accept_waiters.pop_front() {
            let conn = self.listens[listen.0 as usize]
                .queue
                .pop_front()
                .expect("just pushed");
            self.metrics.conns_accepted.inc();
            self.wake_with(w, Completion::Accepted(conn));
        } else {
            self.notify_fd_ready(Fd::Listen(listen));
        }
    }

    pub(crate) fn handle_proc_timer(&mut self, pid: Pid) {
        if self.procs.get(pid).state == ProcState::Sleeping {
            self.wake_with(pid, Completion::TimerFired);
        }
    }

    // ---------------------------------------------------------------
    // Agent-side API (client machines; no server CPU is charged)
    // ---------------------------------------------------------------

    /// Starts a connection attempt from `agent` to `listen` over a link
    /// of `client_bps` with round-trip `rtt_ns`. The agent receives
    /// [`AgentEvent::Connected`] when the SYN lands.
    pub fn agent_connect(
        &mut self,
        agent: AgentId,
        listen: ListenId,
        client_bps: u64,
        rtt_ns: Nanos,
    ) {
        self.queue.schedule_in(
            rtt_ns / 2,
            KEvent::SynArrive {
                listen,
                agent,
                client_bps,
                rtt_ns,
            },
        );
    }

    /// Sends `bytes` of request data from the client to the server,
    /// tagged with an opaque request `token` (typically a file-set index)
    /// that the server logic receives once the bytes arrive.
    pub fn agent_send(&mut self, conn: ConnId, bytes: u64, token: u64) {
        let c = &self.conns[conn.0 as usize];
        let delay = c.rtt_ns / 2 + wire_time(bytes, c.client_bps);
        self.queue
            .schedule_in(delay, KEvent::InboundArrive { conn, bytes, token });
    }

    /// Arms a timer for an agent.
    pub fn agent_timer(&mut self, agent: AgentId, delay: Nanos, token: u64) {
        self.queue
            .schedule_in(delay.max(1), KEvent::AgentTimer { agent, token });
    }
}

/// The page span covering `[offset, offset + len)` (at least one page for
/// zero-length bodies so callers can treat empty files uniformly).
fn page_range(offset: u64, len: u64) -> (u64, u64) {
    let first = offset / PAGE_SIZE;
    if len == 0 {
        return (first, 1);
    }
    let last = (offset + len - 1) / PAGE_SIZE;
    (first, last - first + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_range_spans() {
        assert_eq!(page_range(0, 1), (0, 1));
        assert_eq!(page_range(0, PAGE_SIZE), (0, 1));
        assert_eq!(page_range(0, PAGE_SIZE + 1), (0, 2));
        assert_eq!(page_range(PAGE_SIZE - 1, 2), (0, 2));
        assert_eq!(page_range(3 * PAGE_SIZE, 0), (3, 1));
        assert_eq!(page_range(10_000, 10_000), (2, 3));
    }

    #[test]
    fn kernel_constructs_with_full_cache() {
        let k = Kernel::new(MachineConfig::freebsd());
        let expect = (128 - 20) * 1024 * 1024 / PAGE_SIZE;
        assert_eq!(k.cache.capacity(), expect);
    }

    #[test]
    fn app_memory_shrinks_cache() {
        let mut k = Kernel::new(MachineConfig::freebsd());
        let before = k.cache.capacity();
        k.set_app_mem(32 * 1024 * 1024);
        assert_eq!(before - k.cache.capacity(), 32 * 1024 * 1024 / PAGE_SIZE);
    }

    #[test]
    fn listen_and_pipe_ids_are_sequential() {
        let mut k = Kernel::new(MachineConfig::freebsd());
        assert_eq!(k.add_listen(), ListenId(0));
        assert_eq!(k.add_listen(), ListenId(1));
        assert_eq!(k.add_pipe(), PipeId(0));
        assert_eq!(k.add_pipe(), PipeId(1));
    }
}
