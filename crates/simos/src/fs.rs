//! Simulated filesystem: file metadata and on-disk layout.
//!
//! Files occupy contiguous block extents on the simulated disk, allocated
//! in creation order with a small inter-file gap (a simple model of FFS
//! cylinder-group locality). Each file also has a *metadata page* — a page
//! of a synthetic "metadata file" shared by a group of files — which models
//! the inode/directory blocks that `open`/`stat` must read; cold pathname
//! translation therefore costs disk I/O, which is exactly the work Flash's
//! name-translation helpers absorb.

use crate::config::PAGE_SIZE;
use crate::ids::FileId;

/// Number of files whose metadata shares one on-disk metadata page.
pub const INODES_PER_PAGE: u64 = 32;

/// The reserved file id that backs metadata pages.
pub const META_FILE: FileId = FileId(0);

/// One file in the simulated filesystem.
#[derive(Debug, Clone)]
pub struct FsFile {
    /// Identifier (index into the file table).
    pub id: FileId,
    /// Logical size in bytes.
    pub size: u64,
    /// First disk block of the file's extent.
    pub start_block: u64,
    /// Number of pathname components ("/a/b/c.html" = 3), which scales
    /// the CPU cost of `open`/`stat`.
    pub components: u32,
}

impl FsFile {
    /// Number of pages (= blocks) the file occupies.
    pub fn pages(&self) -> u64 {
        self.size.div_ceil(PAGE_SIZE).max(1)
    }

    /// The metadata page (of [`META_FILE`]) holding this file's inode.
    pub fn meta_page(&self) -> u64 {
        self.id.0 as u64 / INODES_PER_PAGE
    }
}

/// The file table plus a bump allocator over disk blocks.
#[derive(Debug)]
pub struct FileSystem {
    files: Vec<FsFile>,
    next_block: u64,
    /// Gap in blocks left between consecutive files (fragmentation knob:
    /// larger gaps mean longer seeks between files).
    pub inter_file_gap: u64,
}

impl Default for FileSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl FileSystem {
    /// Creates an empty filesystem. Block 0 onwards is reserved for
    /// metadata; data extents start after a metadata area.
    pub fn new() -> Self {
        FileSystem {
            files: Vec::new(),
            // Reserve 4 MB at the front of the disk for metadata pages,
            // so metadata and data cause cross-region seeks like a real
            // FFS inode area would.
            next_block: 4 * 1024 * 1024 / PAGE_SIZE,
            inter_file_gap: 8,
        }
    }

    /// Creates a file of `size` bytes with `components` pathname
    /// components and returns its id. Ids start at 1; 0 is [`META_FILE`].
    pub fn create(&mut self, size: u64, components: u32) -> FileId {
        let id = FileId(self.files.len() as u32 + 1);
        let blocks = size.div_ceil(PAGE_SIZE).max(1);
        let f = FsFile {
            id,
            size,
            start_block: self.next_block,
            components,
        };
        self.next_block += blocks + self.inter_file_gap;
        self.files.push(f);
        id
    }

    /// Looks up a file by id.
    ///
    /// # Panics
    ///
    /// Panics on [`META_FILE`] or an id that was never created — both are
    /// kernel-internal logic errors, not runtime conditions.
    pub fn get(&self, id: FileId) -> &FsFile {
        assert!(id.0 != 0, "META_FILE has no FsFile entry");
        &self.files[(id.0 - 1) as usize]
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when no files exist.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total bytes across all files (the dataset size of a workload).
    pub fn dataset_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.size).sum()
    }

    /// Disk block that backs `page` of `file` (data files only; metadata
    /// pages live at the front of the disk at their page index).
    pub fn block_of(&self, file: FileId, page: u64) -> u64 {
        if file == META_FILE {
            page
        } else {
            self.get(file).start_block + page
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_assigns_increasing_ids_and_extents() {
        let mut fs = FileSystem::new();
        let a = fs.create(10_000, 3);
        let b = fs.create(500, 2);
        assert_eq!(a, FileId(1));
        assert_eq!(b, FileId(2));
        let fa = fs.get(a);
        let fb = fs.get(b);
        assert_eq!(fa.pages(), 3);
        assert_eq!(fb.pages(), 1);
        assert!(fb.start_block >= fa.start_block + fa.pages());
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.dataset_bytes(), 10_500);
    }

    #[test]
    fn zero_byte_files_still_occupy_a_page() {
        let mut fs = FileSystem::new();
        let id = fs.create(0, 1);
        assert_eq!(fs.get(id).pages(), 1);
    }

    #[test]
    fn meta_pages_are_shared_between_neighbours() {
        let mut fs = FileSystem::new();
        let ids: Vec<_> = (0..40).map(|_| fs.create(100, 2)).collect();
        let p0 = fs.get(ids[0]).meta_page();
        let p31 = fs.get(ids[30]).meta_page();
        let p33 = fs.get(ids[33]).meta_page();
        assert_eq!(p0, p31);
        assert_ne!(p0, p33);
    }

    #[test]
    fn data_blocks_leave_room_for_metadata() {
        let mut fs = FileSystem::new();
        let id = fs.create(100, 1);
        // Metadata block for page 5 of the meta file is block 5; data
        // blocks start past the reserved metadata area.
        assert_eq!(fs.block_of(META_FILE, 5), 5);
        assert!(fs.block_of(id, 0) >= 1024);
    }

    #[test]
    #[should_panic(expected = "META_FILE")]
    fn meta_file_has_no_entry() {
        let fs = FileSystem::new();
        let _ = fs.get(META_FILE);
    }
}
