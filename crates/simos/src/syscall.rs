//! Syscall result types shared between the kernel and server logic.
//!
//! Server logic (in `flash-core`) is written as a state machine: each
//! dispatch receives the [`Completion`] of its previous syscall, does some
//! CPU work, and issues at most one new syscall. This mirrors how the real
//! servers interleave work, and makes blocking explicit — the property the
//! whole paper is about.

use crate::ids::{ConnId, Fd, FileId, Pid, PipeId};

/// Whether a socket operation should block or return `WouldBlock`.
///
/// Note this flag is honoured only for *socket* operations. File reads and
/// `open`/`stat` always block on a miss, reproducing the OS behaviour that
/// motivates AMPED (§3.3: "non-blocking read operations on files may still
/// block the caller while disk I/O is in progress").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocking {
    /// Block the process until the operation can proceed.
    Yes,
    /// Return [`Completion::WouldBlock`] instead of blocking.
    No,
}

/// A small fixed-size message carried over a pipe (job descriptors and
/// completion notifications between the AMPED server and its helpers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipeMsg {
    /// Opcode, interpreted by the server logic.
    pub op: u32,
    /// First operand (typically a connection id).
    pub a: u64,
    /// Second operand (typically a file id or offset).
    pub b: u64,
    /// Third operand (typically a length).
    pub c: u64,
}

/// Result of the previous syscall, delivered at the next dispatch.
#[derive(Debug, Clone)]
pub enum Completion {
    /// First dispatch of a freshly spawned process.
    Start,
    /// A non-blocking operation had nothing to do.
    WouldBlock,
    /// `accept` returned a new connection.
    Accepted(ConnId),
    /// `read` on a connection returned `bytes` request bytes.
    ConnRead {
        /// Connection read from.
        conn: ConnId,
        /// Bytes consumed from the socket.
        bytes: u64,
        /// Request tokens whose bytes have fully arrived (workload-defined
        /// meaning, typically a file-set index).
        tokens: Vec<u64>,
    },
    /// A `writev` completed; the kernel accepted the given byte counts
    /// into the send buffer.
    Written {
        /// Connection written to.
        conn: ConnId,
        /// Header bytes accepted.
        hdr_bytes: u64,
        /// Body bytes accepted.
        body_bytes: u64,
    },
    /// `open`/`stat` finished (after any metadata disk reads).
    Stated {
        /// File that was looked up.
        file: FileId,
    },
    /// A file read / page-touch finished; the pages are now resident.
    FileRead {
        /// File read.
        file: FileId,
        /// Bytes covered.
        bytes: u64,
    },
    /// `mmap` or `munmap` finished.
    Mapped,
    /// `mincore` answered a residency query.
    Residency {
        /// True if every page in the queried range was resident.
        resident: bool,
    },
    /// A pipe write completed.
    PipeSent,
    /// A pipe read returned a message.
    PipeMsg {
        /// Pipe the message arrived on.
        pipe: PipeId,
        /// The message.
        msg: PipeMsg,
    },
    /// `select` returned with ready descriptors.
    SelectReady(Vec<Fd>),
    /// A `sleep` timer fired.
    TimerFired,
    /// `fork` returned the child's pid (parent side only; the child is a
    /// fresh logic object and receives [`Completion::Start`]).
    Forked(Pid),
    /// A connection `close` finished.
    Closed(ConnId),
}

/// An operation suspended on disk I/O, re-evaluated by the kernel when the
/// disk read it waits on completes. Stored in the process table.
#[derive(Debug, Clone)]
pub enum PendingOp {
    /// `open`/`stat` waiting for a metadata page.
    Stat {
        /// File being looked up.
        file: FileId,
    },
    /// File read / page touch waiting for data pages.
    FileRead {
        /// File being read.
        file: FileId,
        /// First page of the requested range.
        first_page: u64,
        /// Page count of the requested range.
        npages: u64,
        /// Bytes represented (for the completion value).
        bytes: u64,
        /// Whether a user-space copy is performed on completion (read(2)
        /// semantics) as opposed to a pure page touch (mmap semantics).
        copy: bool,
    },
    /// A `writev` of file-backed data waiting for pages to fault in
    /// (this is how SPED stalls: the write blocks the whole process).
    Send {
        /// Connection being written.
        conn: ConnId,
        /// Source file.
        file: FileId,
        /// Header bytes in this writev.
        hdr_bytes: u64,
        /// Body bytes accepted into the send buffer.
        body_bytes: u64,
        /// First page of the accepted body range.
        first_page: u64,
        /// Page count of the accepted body range.
        npages: u64,
        /// Whether the header was alignment-padded (§5.5).
        aligned: bool,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_msg_is_copy_and_default() {
        let m = PipeMsg {
            op: 1,
            a: 2,
            b: 3,
            c: 4,
        };
        let n = m; // Copy
        assert_eq!(m, n);
        assert_eq!(PipeMsg::default().op, 0);
    }

    #[test]
    fn completion_is_cloneable_for_requeue() {
        let c = Completion::SelectReady(vec![Fd::ConnRead(ConnId(3))]);
        let d = c.clone();
        match d {
            Completion::SelectReady(v) => assert_eq!(v.len(), 1),
            _ => panic!("clone changed variant"),
        }
    }
}
