//! Identifier newtypes for kernel objects.
//!
//! Using distinct newtypes (instead of bare `u32`s) prevents the classic
//! "passed a connection id where a file id was expected" class of bug at
//! compile time, at zero runtime cost.

/// A simulated process or kernel thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// An established TCP connection (server-side socket).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// A unidirectional IPC pipe carrying small messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipeId(pub u32);

/// A file in the simulated filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// An external agent (simulated client machine); lives outside the
/// simulated server CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AgentId(pub u32);

/// A listening socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ListenId(pub u32);

/// A descriptor as seen by `select`: the server registers interest in
/// these and the kernel reports readiness.
///
/// Read and write interest on a connection are distinct members, mirroring
/// the separate read/write fd-sets of `select(2)`: an event-driven server
/// registers write interest only while it has pending data, otherwise
/// `select` would spin on always-writable sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fd {
    /// Readiness = pending connection in the accept queue.
    Listen(ListenId),
    /// Readiness = request bytes available to read.
    ConnRead(ConnId),
    /// Readiness = free space in the TCP send buffer.
    ConnWrite(ConnId),
    /// Readiness = a message is queued in the pipe.
    Pipe(PipeId),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fds_hash_and_compare_by_variant_and_id() {
        let mut set = HashSet::new();
        set.insert(Fd::ConnRead(ConnId(1)));
        set.insert(Fd::ConnWrite(ConnId(1)));
        set.insert(Fd::Listen(ListenId(1)));
        set.insert(Fd::Pipe(PipeId(1)));
        assert_eq!(set.len(), 4);
        assert!(set.contains(&Fd::ConnRead(ConnId(1))));
        assert!(!set.contains(&Fd::ConnRead(ConnId(2))));
    }
}
