//! Global filesystem page cache with LRU replacement.
//!
//! The cache approximates the BSD/Solaris unified buffer cache: all file
//! reads (whether through `read(2)` or `mmap` page faults) go through it,
//! and it is sized by whatever physical memory is not consumed by the
//! kernel and process memory (see [`crate::config::MemoryParams`]).
//!
//! LRU stands in for the clock algorithm of the real kernels — the paper
//! itself makes that substitution in the opposite direction for Flash's
//! mapped-file cache (§5.4: "We use LRU to approximate the 'clock' page
//! replacement algorithm used in many operating systems").
//!
//! Implementation: a hash map from `(file, page)` to a slot in a slab of
//! doubly-linked nodes, giving O(1) lookup, touch, insert and evict.

use std::collections::HashMap;

use crate::ids::FileId;

/// Key of one cached page.
pub type PageKey = (FileId, u64);

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: PageKey,
    prev: u32,
    next: u32,
}

/// An LRU cache of file pages with a mutable capacity.
#[derive(Debug)]
pub struct PageCache {
    map: HashMap<PageKey, u32>,
    slab: Vec<Node>,
    free: Vec<u32>,
    head: u32, // most recently used
    tail: u32, // least recently used
    capacity: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PageCache {
    /// Creates a cache holding at most `capacity` pages.
    pub fn new(capacity: u64) -> Self {
        PageCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Current number of resident pages.
    pub fn len(&self) -> u64 {
        self.map.len() as u64
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// (hits, misses, evictions) counters since construction.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Changes the capacity, evicting LRU pages if the cache is now over.
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
        while self.len() > self.capacity {
            self.evict_lru();
        }
    }

    /// Residency test without promoting the page (this is what `mincore`
    /// does — it must not perturb replacement state).
    pub fn resident(&self, key: PageKey) -> bool {
        self.map.contains_key(&key)
    }

    /// Returns true and promotes the page if resident; records a hit or a
    /// miss. This is the access path used by reads and page faults.
    pub fn touch(&mut self, key: PageKey) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts a page as most-recently-used, evicting as needed.
    /// Inserting an already-resident page just promotes it.
    pub fn insert(&mut self, key: PageKey) {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.capacity == 0 {
            return;
        }
        while self.len() >= self.capacity {
            self.evict_lru();
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Node {
                    key,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Node {
                    key,
                    prev: NIL,
                    next: NIL,
                });
                (self.slab.len() - 1) as u32
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Drops every page belonging to `file` (used by tests and by file
    /// invalidation). O(resident pages).
    pub fn remove_file(&mut self, file: FileId) {
        let keys: Vec<PageKey> = self
            .map
            .keys()
            .filter(|(f, _)| *f == file)
            .copied()
            .collect();
        for k in keys {
            if let Some(idx) = self.map.remove(&k) {
                self.unlink(idx);
                self.free.push(idx);
            }
        }
    }

    /// Counts resident pages in `[first, first + count)` of `file`.
    pub fn resident_count(&self, file: FileId, first: u64, count: u64) -> u64 {
        (first..first + count)
            .filter(|p| self.resident((file, *p)))
            .count() as u64
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        if idx == NIL {
            return;
        }
        let key = self.slab[idx as usize].key;
        self.unlink(idx);
        self.map.remove(&key);
        self.free.push(idx);
        self.evictions += 1;
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let n = &self.slab[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.slab[prev as usize].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slab[next as usize].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        let n = &mut self.slab[idx as usize];
        n.prev = NIL;
        n.next = NIL;
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let n = &mut self.slab[idx as usize];
            n.prev = NIL;
            n.next = old_head;
        }
        if old_head != NIL {
            self.slab[old_head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Least-recently-used key, if any (exposed for tests).
    pub fn lru_key(&self) -> Option<PageKey> {
        if self.tail == NIL {
            None
        } else {
            Some(self.slab[self.tail as usize].key)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(f: u32, p: u64) -> PageKey {
        (FileId(f), p)
    }

    #[test]
    fn insert_and_lookup() {
        let mut c = PageCache::new(4);
        c.insert(k(1, 0));
        c.insert(k(1, 1));
        assert!(c.resident(k(1, 0)));
        assert!(!c.resident(k(2, 0)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_lru_order() {
        let mut c = PageCache::new(3);
        c.insert(k(1, 0));
        c.insert(k(1, 1));
        c.insert(k(1, 2));
        // Touch page 0 so page 1 becomes LRU.
        assert!(c.touch(k(1, 0)));
        c.insert(k(1, 3));
        assert!(c.resident(k(1, 0)));
        assert!(!c.resident(k(1, 1)), "LRU page should have been evicted");
        assert_eq!(c.stats().2, 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = PageCache::new(10);
        for p in 0..100 {
            c.insert(k(1, p));
            assert!(c.len() <= 10);
        }
        assert_eq!(c.len(), 10);
        // The survivors are the 10 most recently inserted.
        for p in 90..100 {
            assert!(c.resident(k(1, p)));
        }
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut c = PageCache::new(8);
        for p in 0..8 {
            c.insert(k(1, p));
        }
        c.set_capacity(3);
        assert_eq!(c.len(), 3);
        for p in 5..8 {
            assert!(c.resident(k(1, p)));
        }
    }

    #[test]
    fn mincore_style_check_does_not_promote() {
        let mut c = PageCache::new(2);
        c.insert(k(1, 0));
        c.insert(k(1, 1));
        // `resident` must not promote page 0...
        assert!(c.resident(k(1, 0)));
        c.insert(k(1, 2));
        // ...so page 0 (LRU) is the one evicted.
        assert!(!c.resident(k(1, 0)));
        assert!(c.resident(k(1, 1)));
    }

    #[test]
    fn touch_counts_hits_and_misses() {
        let mut c = PageCache::new(2);
        c.insert(k(1, 0));
        assert!(c.touch(k(1, 0)));
        assert!(!c.touch(k(1, 9)));
        let (h, m, _) = c.stats();
        assert_eq!((h, m), (1, 1));
    }

    #[test]
    fn remove_file_is_selective() {
        let mut c = PageCache::new(8);
        c.insert(k(1, 0));
        c.insert(k(2, 0));
        c.insert(k(1, 1));
        c.remove_file(FileId(1));
        assert!(!c.resident(k(1, 0)));
        assert!(!c.resident(k(1, 1)));
        assert!(c.resident(k(2, 0)));
        assert_eq!(c.len(), 1);
        // Freed slots are reused.
        c.insert(k(3, 0));
        c.insert(k(3, 1));
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn resident_count_ranges() {
        let mut c = PageCache::new(8);
        c.insert(k(1, 2));
        c.insert(k(1, 4));
        assert_eq!(c.resident_count(FileId(1), 0, 6), 2);
        assert_eq!(c.resident_count(FileId(1), 3, 1), 0);
        assert_eq!(c.resident_count(FileId(2), 0, 6), 0);
    }

    #[test]
    fn zero_capacity_accepts_nothing() {
        let mut c = PageCache::new(0);
        c.insert(k(1, 0));
        assert!(c.is_empty());
        assert!(!c.touch(k(1, 0)));
    }

    #[test]
    fn reinsert_promotes_instead_of_duplicating() {
        let mut c = PageCache::new(3);
        c.insert(k(1, 0));
        c.insert(k(1, 1));
        c.insert(k(1, 0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.lru_key(), Some(k(1, 1)));
    }
}
