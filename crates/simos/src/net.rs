//! Network objects: connections and listen sockets.
//!
//! These are passive state holders; the kernel (in [`crate::kernel`])
//! drives them and schedules wire events. The model per connection is a
//! TCP send buffer drained in chunks, each chunk serialized through the
//! shared NIC (capacity `nic_bps`) and then paced by the client's own
//! link (`client_bps`). Slow clients therefore hold data in the send
//! buffer for a long time — the WAN effect of §6.4.

use std::collections::VecDeque;

use flash_simcore::time::Nanos;
use flash_simcore::SimTime;

use crate::ids::{AgentId, ConnId, ListenId, Pid};

/// Lifecycle of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Established and usable.
    Open,
    /// Server called `close`; remaining send-buffer bytes still draining.
    Closing,
    /// Fully closed; id is dead.
    Closed,
}

/// Maximum bytes moved per simulated wire event. Smaller chunks model
/// finer interleaving at more event cost; 16 KB keeps event counts low
/// while still interleaving competing connections fairly.
pub const WIRE_CHUNK: u64 = 16 * 1024;

/// One established connection (server-side view plus wire state).
#[derive(Debug)]
pub struct Connection {
    /// Identifier.
    pub id: ConnId,
    /// The client agent on the other end.
    pub agent: AgentId,
    /// Client link rate in bits/s.
    pub client_bps: u64,
    /// Round-trip time to the client.
    pub rtt_ns: Nanos,
    /// Lifecycle state.
    pub state: ConnState,
    /// Request bytes that have arrived and are readable by the server.
    pub in_avail: u64,
    /// Opaque request tokens that arrived with those bytes (one per
    /// complete request; the workload and server agree on their meaning —
    /// typically an index into the shared file set).
    pub in_tokens: VecDeque<u64>,
    /// Bytes currently held in the TCP send buffer.
    pub sendbuf_used: u64,
    /// Send buffer capacity.
    pub sendbuf_cap: u64,
    /// True while a wire chunk is scheduled for this connection.
    pub inflight: bool,
    /// Earliest time the client link is free (per-connection pacing).
    pub link_free_at: SimTime,
    /// Total bytes ever accepted into the send buffer.
    pub total_enqueued: u64,
    /// Total bytes delivered to the client.
    pub total_delivered: u64,
    /// Byte offsets (in `total_enqueued` space) at which a response ends;
    /// used to tell the client agent "response complete" at the moment
    /// the last byte *arrives*, which is what a benchmark client observes.
    pub boundaries: VecDeque<u64>,
    /// Process blocked reading this connection, if any.
    pub read_waiter: Option<Pid>,
    /// Process blocked writing this connection, if any.
    pub write_waiter: Option<Pid>,
}

impl Connection {
    /// Creates an open connection.
    pub fn new(
        id: ConnId,
        agent: AgentId,
        client_bps: u64,
        rtt_ns: Nanos,
        sendbuf_cap: u64,
    ) -> Self {
        Connection {
            id,
            agent,
            client_bps,
            rtt_ns,
            state: ConnState::Open,
            in_avail: 0,
            in_tokens: VecDeque::new(),
            sendbuf_used: 0,
            sendbuf_cap,
            inflight: false,
            link_free_at: SimTime::ZERO,
            total_enqueued: 0,
            total_delivered: 0,
            boundaries: VecDeque::new(),
            read_waiter: None,
            write_waiter: None,
        }
    }

    /// Free space in the send buffer.
    pub fn space(&self) -> u64 {
        self.sendbuf_cap - self.sendbuf_used
    }

    /// Accepts `n` bytes into the send buffer.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds free space (callers must clamp first).
    pub fn enqueue(&mut self, n: u64) {
        assert!(n <= self.space(), "send buffer overflow");
        self.sendbuf_used += n;
        self.total_enqueued += n;
    }

    /// Marks the current enqueue position as the end of a response.
    pub fn mark_response_boundary(&mut self) {
        self.boundaries.push_back(self.total_enqueued);
    }

    /// Records delivery of `n` bytes to the client; returns how many
    /// response boundaries were crossed (normally 0 or 1).
    pub fn deliver(&mut self, n: u64) -> u32 {
        self.sendbuf_used -= n;
        self.total_delivered += n;
        let mut crossed = 0;
        while let Some(&b) = self.boundaries.front() {
            if self.total_delivered >= b {
                self.boundaries.pop_front();
                crossed += 1;
            } else {
                break;
            }
        }
        crossed
    }

    /// Size of the next wire chunk to transmit (0 when nothing buffered).
    pub fn next_chunk(&self) -> u64 {
        self.sendbuf_used.min(WIRE_CHUNK)
    }
}

/// A listening socket with its accept queue.
#[derive(Debug)]
pub struct Listen {
    /// Identifier.
    pub id: ListenId,
    /// Maximum accept-queue length; SYNs beyond this are dropped.
    pub backlog: usize,
    /// Established connections waiting to be accepted.
    pub queue: VecDeque<ConnId>,
    /// Processes blocked in `accept` (MP/MT servers park here).
    pub accept_waiters: VecDeque<Pid>,
}

impl Listen {
    /// Creates an empty listen socket.
    pub fn new(id: ListenId, backlog: usize) -> Self {
        Listen {
            id,
            backlog,
            queue: VecDeque::new(),
            accept_waiters: VecDeque::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn() -> Connection {
        Connection::new(ConnId(1), AgentId(0), 100_000_000, 200_000, 64 * 1024)
    }

    #[test]
    fn sendbuf_accounting() {
        let mut c = conn();
        assert_eq!(c.space(), 64 * 1024);
        c.enqueue(10_000);
        assert_eq!(c.space(), 64 * 1024 - 10_000);
        assert_eq!(c.deliver(4_000), 0);
        assert_eq!(c.sendbuf_used, 6_000);
        assert_eq!(c.total_delivered, 4_000);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn enqueue_past_capacity_panics() {
        let mut c = conn();
        c.enqueue(64 * 1024 + 1);
    }

    #[test]
    fn response_boundaries_fire_on_delivery() {
        let mut c = conn();
        c.enqueue(1_000);
        c.mark_response_boundary();
        c.enqueue(2_000);
        c.mark_response_boundary();
        assert_eq!(c.deliver(999), 0);
        assert_eq!(c.deliver(1), 1, "first response completed");
        assert_eq!(c.deliver(2_000), 1, "second response completed");
        assert!(c.boundaries.is_empty());
    }

    #[test]
    fn multiple_boundaries_can_cross_in_one_delivery() {
        let mut c = conn();
        c.enqueue(100);
        c.mark_response_boundary();
        c.enqueue(100);
        c.mark_response_boundary();
        assert_eq!(c.deliver(200), 2);
    }

    #[test]
    fn next_chunk_clamps_to_wire_chunk() {
        let mut c = conn();
        assert_eq!(c.next_chunk(), 0);
        c.enqueue(5_000);
        assert_eq!(c.next_chunk(), 5_000);
        c.enqueue(40_000);
        assert_eq!(c.next_chunk(), WIRE_CHUNK);
    }

    #[test]
    fn listen_starts_empty() {
        let l = Listen::new(ListenId(0), 128);
        assert!(l.queue.is_empty());
        assert!(l.accept_waiters.is_empty());
        assert_eq!(l.backlog, 128);
    }
}
