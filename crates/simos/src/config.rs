//! Machine configuration: memory, disk and network parameters.

use crate::profile::OsProfile;
use flash_simcore::time::Nanos;

/// Size of a page (and of a disk block) in the simulation.
pub const PAGE_SIZE: u64 = 4096;

/// Mechanical disk parameters (1999-era SCSI disk).
#[derive(Debug, Clone)]
pub struct DiskParams {
    /// Fixed per-request overhead (controller, interrupt).
    pub overhead_ns: Nanos,
    /// Seek cost for a full-stroke move; actual seeks scale with
    /// sqrt(distance/full_stroke), a standard seek-curve approximation.
    pub full_seek_ns: Nanos,
    /// Minimum (track-to-track) seek cost.
    pub min_seek_ns: Nanos,
    /// Average rotational delay (half a revolution; 7200 rpm → ~4.2 ms).
    pub rotation_ns: Nanos,
    /// Media transfer rate in bytes per second.
    pub transfer_bytes_per_sec: u64,
    /// Total disk capacity in blocks (defines the seek distance scale).
    pub total_blocks: u64,
    /// Use C-LOOK elevator scheduling when true, FCFS when false.
    pub elevator: bool,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams {
            overhead_ns: 500_000,
            full_seek_ns: 16_000_000,
            min_seek_ns: 1_200_000,
            rotation_ns: 4_200_000,
            transfer_bytes_per_sec: 20_000_000,
            total_blocks: 2_000_000, // ~8 GB
            elevator: true,
        }
    }
}

/// Network parameters for the server's links.
#[derive(Debug, Clone)]
pub struct NetParams {
    /// Aggregate NIC capacity in bits/s (the paper's testbed has multiple
    /// 100 Mb/s Ethernets; four gives 400 Mb/s so the CPU, not the wire,
    /// limits cached-workload throughput).
    pub nic_bps: u64,
    /// Default per-client link rate in bits/s (LAN clients).
    pub client_bps: u64,
    /// Default round-trip time between client and server.
    pub rtt_ns: Nanos,
    /// TCP send-buffer capacity per connection.
    pub sendbuf_bytes: u64,
    /// Listen-socket backlog.
    pub backlog: usize,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            nic_bps: 400_000_000,
            client_bps: 100_000_000,
            rtt_ns: 200_000,
            sendbuf_bytes: 64 * 1024,
            backlog: 1024,
        }
    }
}

/// Physical memory model.
///
/// The page cache receives whatever is left of physical memory after the
/// kernel and all process-resident memory; this competition is central to
/// the paper (§4.1 "Memory effects"): MP servers with hundreds of processes
/// shrink the file cache, while SPED/AMPED leave almost everything to it.
#[derive(Debug, Clone)]
pub struct MemoryParams {
    /// Total physical memory in bytes (paper: 128 MB).
    pub total_bytes: u64,
    /// Memory reserved for kernel text/data and boot-time structures.
    pub kernel_bytes: u64,
}

impl Default for MemoryParams {
    fn default() -> Self {
        MemoryParams {
            total_bytes: 128 * 1024 * 1024,
            kernel_bytes: 20 * 1024 * 1024,
        }
    }
}

impl MemoryParams {
    /// Page-cache capacity in pages given `consumed` bytes of process and
    /// application memory, with a small floor so the simulation degrades
    /// rather than dividing by zero under extreme overcommit.
    pub fn cache_pages(&self, consumed: u64) -> u64 {
        let floor = 2 * 1024 * 1024 / PAGE_SIZE;
        let avail = self
            .total_bytes
            .saturating_sub(self.kernel_bytes)
            .saturating_sub(consumed);
        (avail / PAGE_SIZE).max(floor)
    }

    /// Bytes of overcommit (process memory beyond what physically fits),
    /// used by the crude paging penalty model.
    pub fn overcommit_bytes(&self, consumed: u64) -> u64 {
        consumed.saturating_sub(self.total_bytes.saturating_sub(self.kernel_bytes))
    }
}

/// Complete machine description handed to the kernel at construction.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// OS cost profile (FreeBSD or Solaris preset, or custom).
    pub os: OsProfile,
    /// Physical memory.
    pub memory: MemoryParams,
    /// Disk mechanics.
    pub disk: DiskParams,
    /// Network links.
    pub net: NetParams,
}

impl MachineConfig {
    /// The paper's testbed running FreeBSD 2.2.6.
    pub fn freebsd() -> Self {
        MachineConfig {
            os: OsProfile::freebsd(),
            memory: MemoryParams::default(),
            disk: DiskParams::default(),
            net: NetParams::default(),
        }
    }

    /// The paper's testbed running Solaris 2.6. Solaris's kernel and
    /// daemons leave noticeably less memory to the file cache than
    /// FreeBSD's (the paper picks a 90 MB dataset for the §6.4 WAN test
    /// precisely because it exceeds the Solaris effective cache).
    pub fn solaris() -> Self {
        let mut cfg = MachineConfig {
            os: OsProfile::solaris(),
            ..Self::freebsd()
        };
        cfg.memory.kernel_bytes = 36 * 1024 * 1024;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_capacity_shrinks_with_consumption() {
        let m = MemoryParams::default();
        let all = m.cache_pages(0);
        let less = m.cache_pages(40 * 1024 * 1024);
        assert!(less < all);
        assert_eq!(all - less, 40 * 1024 * 1024 / PAGE_SIZE);
    }

    #[test]
    fn cache_capacity_has_floor_under_overcommit() {
        let m = MemoryParams::default();
        let floored = m.cache_pages(1024 * 1024 * 1024);
        assert_eq!(floored, 2 * 1024 * 1024 / PAGE_SIZE);
    }

    #[test]
    fn overcommit_measures_deficit() {
        let m = MemoryParams::default();
        assert_eq!(m.overcommit_bytes(0), 0);
        let usable = m.total_bytes - m.kernel_bytes;
        assert_eq!(m.overcommit_bytes(usable + 5), 5);
    }

    #[test]
    fn presets_differ_only_in_os() {
        let f = MachineConfig::freebsd();
        let s = MachineConfig::solaris();
        assert_eq!(f.memory.total_bytes, s.memory.total_bytes);
        assert_eq!(f.net.nic_bps, s.net.nic_bps);
        assert_ne!(f.os.name, s.os.name);
    }
}
