//! The simulation driver: composes the kernel, server process logic and
//! external client agents, and runs the event loop.
//!
//! Server code implements [`ProcessLogic`]; client machines implement
//! [`Agent`]. Both are registered on a [`Simulation`], which then pumps
//! events until a deadline. Everything is single-threaded and
//! deterministic.

use flash_simcore::SimTime;

use crate::config::MachineConfig;
use crate::ids::{AgentId, Pid};
use crate::kernel::{AgentEvent, KEvent, Kernel};
use crate::proc::{Proc, ProcKind};
use crate::syscall::Completion;

/// Logic executed by a simulated server process.
///
/// `on_run` is called once per dispatch with the [`Completion`] of the
/// previous syscall. The logic may charge CPU via [`Kernel::cpu`] any
/// number of times and must finish by issuing exactly one `sys_*` call
/// (or [`Kernel::sys_exit`]).
pub trait ProcessLogic {
    /// One scheduler dispatch of this process.
    fn on_run(&mut self, pid: Pid, k: &mut Kernel, completion: Completion);
}

/// Logic executed by an external client machine (no server CPU charged).
pub trait Agent {
    /// Delivery of one agent event.
    fn on_event(&mut self, k: &mut Kernel, ev: AgentEvent);
}

/// Adapter turning a closure into [`ProcessLogic`] — convenient for tests
/// and small fixtures.
///
/// ```
/// use flash_simos::sim::FnLogic;
/// use flash_simos::{Blocking, Completion};
///
/// let logic = FnLogic::new(|_pid, k: &mut flash_simos::Kernel, _c: Completion| {
///     k.sys_sleep(1_000);
/// });
/// # let _ = logic;
/// ```
pub struct FnLogic<F>(F);

impl<F: FnMut(Pid, &mut Kernel, Completion)> FnLogic<F> {
    /// Wraps `f` as process logic.
    pub fn new(f: F) -> Self {
        FnLogic(f)
    }
}

impl<F: FnMut(Pid, &mut Kernel, Completion)> ProcessLogic for FnLogic<F> {
    fn on_run(&mut self, pid: Pid, k: &mut Kernel, completion: Completion) {
        (self.0)(pid, k, completion)
    }
}

/// A complete simulation: kernel + processes + agents.
pub struct Simulation {
    /// The simulated machine. Public so setup code can create files,
    /// listen sockets and pipes directly.
    pub kernel: Kernel,
    logics: Vec<Option<Box<dyn ProcessLogic>>>,
    agents: Vec<Option<Box<dyn Agent>>>,
}

impl Simulation {
    /// Creates a simulation of the given machine.
    pub fn new(cfg: MachineConfig) -> Self {
        Simulation {
            kernel: Kernel::new(cfg),
            logics: Vec::new(),
            agents: Vec::new(),
        }
    }

    /// Spawns a process running `logic`.
    ///
    /// `group` is the address-space group (`None` allocates a fresh one);
    /// threads should pass the group of their parent process. `mem_bytes`
    /// is the resident memory charged against the page cache.
    pub fn add_process(
        &mut self,
        kind: ProcKind,
        group: Option<u32>,
        mem_bytes: u64,
        label: impl Into<String>,
        logic: Box<dyn ProcessLogic>,
    ) -> Pid {
        let group = group.unwrap_or_else(|| self.kernel.new_group());
        let pid = self
            .kernel
            .spawn(Proc::new(kind, group, mem_bytes, label.into()));
        debug_assert_eq!(pid.0 as usize, self.logics.len());
        self.logics.push(Some(logic));
        pid
    }

    /// Registers an external agent. The constructor receives the new
    /// agent's id so it can address itself in kernel calls.
    pub fn add_agent<F>(&mut self, make: F) -> AgentId
    where
        F: FnOnce(AgentId) -> Box<dyn Agent>,
    {
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(Some(make(id)));
        id
    }

    /// Processes a single event. Returns `false` when the calendar is
    /// empty.
    pub fn step(&mut self) -> bool {
        let Some((_, ev)) = self.kernel.queue.pop() else {
            return false;
        };
        match ev {
            KEvent::Dispatch => {
                if let Some((pid, completion)) = self.kernel.begin_dispatch() {
                    let mut logic = self.logics[pid.0 as usize]
                        .take()
                        .expect("process logic re-entered");
                    logic.on_run(pid, &mut self.kernel, completion);
                    self.logics[pid.0 as usize] = Some(logic);
                    self.kernel.end_dispatch();
                }
            }
            KEvent::DiskDone => self.kernel.handle_disk_done(),
            KEvent::WireDelivered { conn, bytes } => self.kernel.handle_wire_delivered(conn, bytes),
            KEvent::InboundArrive { conn, bytes, token } => {
                self.kernel.handle_inbound(conn, bytes, token)
            }
            KEvent::SynArrive {
                listen,
                agent,
                client_bps,
                rtt_ns,
            } => self.kernel.handle_syn(listen, agent, client_bps, rtt_ns),
            KEvent::AgentTimer { agent, token } => {
                self.kernel
                    .agent_outbox
                    .push_back((agent, AgentEvent::Timer(token)));
            }
            KEvent::ProcTimer(pid) => self.kernel.handle_proc_timer(pid),
        }
        self.drain_agent_outbox();
        true
    }

    fn drain_agent_outbox(&mut self) {
        while let Some((aid, ev)) = self.kernel.agent_outbox.pop_front() {
            let mut agent = self.agents[aid.0 as usize]
                .take()
                .expect("agent re-entered");
            agent.on_event(&mut self.kernel, ev);
            self.agents[aid.0 as usize] = Some(agent);
        }
    }

    /// Runs until simulated time `deadline` (or the calendar empties).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.kernel.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
    }

    /// Runs until `deadline`, panicking if more than `max_events` are
    /// processed (a guard against event storms in tests).
    pub fn run_until_guarded(&mut self, deadline: SimTime, max_events: u64) {
        let start = self.kernel.queue.events_processed();
        while let Some(t) = self.kernel.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
            assert!(
                self.kernel.queue.events_processed() - start <= max_events,
                "event budget exceeded before {deadline:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PAGE_SIZE;
    use crate::ids::{ConnId, Fd, FileId, ListenId};
    use crate::kernel::SendSrc;
    use crate::syscall::Blocking;
    use flash_simcore::time::{MILLI, SEC};

    /// A trivial static-file server: accept, read request, send a fixed
    /// response from a file, close. Single process, blocking calls —
    /// essentially a 1-connection-at-a-time MP server.
    struct ToyServer {
        listen: ListenId,
        file: FileId,
        size: u64,
        state: Toy,
    }

    enum Toy {
        Accepting,
        Reading(ConnId),
        Sending { conn: ConnId, sent: u64 },
        Closing(#[allow(dead_code)] ConnId),
    }

    impl ProcessLogic for ToyServer {
        fn on_run(&mut self, _pid: Pid, k: &mut Kernel, c: Completion) {
            loop {
                match &mut self.state {
                    Toy::Accepting => {
                        if let Completion::Accepted(conn) = c {
                            self.state = Toy::Reading(conn);
                            k.sys_conn_read(conn, Blocking::Yes);
                        } else {
                            k.sys_accept(self.listen, Blocking::Yes);
                        }
                        return;
                    }
                    Toy::Reading(conn) => {
                        let conn = *conn;
                        if let Completion::ConnRead { bytes, .. } = c {
                            assert!(bytes > 0);
                            self.state = Toy::Sending { conn, sent: 0 };
                            continue;
                        }
                        unreachable!("blocking read must return data");
                    }
                    Toy::Sending { conn, sent } => {
                        let conn = *conn;
                        if let Completion::Written { body_bytes, .. } = c {
                            *sent += body_bytes;
                        }
                        if *sent >= self.size {
                            k.mark_response_boundary(conn);
                            self.state = Toy::Closing(conn);
                            k.sys_close(conn);
                        } else {
                            let sent = *sent;
                            k.sys_send(
                                conn,
                                0,
                                SendSrc::File {
                                    file: self.file,
                                    offset: sent,
                                    len: self.size - sent,
                                },
                                true,
                                Blocking::Yes,
                            );
                        }
                        return;
                    }
                    Toy::Closing(_) => {
                        self.state = Toy::Accepting;
                        k.sys_accept(self.listen, Blocking::Yes);
                        return;
                    }
                }
            }
        }
    }

    /// A client that opens a connection, sends one request, and counts
    /// completed responses, reconnecting forever.
    struct ToyClient {
        id: AgentId,
        listen: ListenId,
        done: std::rc::Rc<std::cell::Cell<u64>>,
    }

    impl Agent for ToyClient {
        fn on_event(&mut self, k: &mut Kernel, ev: AgentEvent) {
            match ev {
                AgentEvent::Connected(conn) => k.agent_send(conn, 300, 0),
                AgentEvent::ResponseComplete { .. } => {
                    self.done.set(self.done.get() + 1);
                }
                AgentEvent::Closed(_) => {
                    k.agent_connect(self.id, self.listen, 100_000_000, 200_000);
                }
                AgentEvent::Data { .. } | AgentEvent::Timer(_) => {}
            }
        }
    }

    fn toy_setup(file_kb: u64) -> (Simulation, std::rc::Rc<std::cell::Cell<u64>>) {
        let mut sim = Simulation::new(MachineConfig::freebsd());
        let listen = sim.kernel.add_listen();
        let file = sim.kernel.fs.create(file_kb * 1024, 2);
        let size = file_kb * 1024;
        sim.add_process(
            ProcKind::Process,
            None,
            1024 * 1024,
            "toy-server",
            Box::new(ToyServer {
                listen,
                file,
                size,
                state: Toy::Accepting,
            }),
        );
        let done = std::rc::Rc::new(std::cell::Cell::new(0));
        let d2 = done.clone();
        let id = sim.add_agent(move |id| {
            Box::new(ToyClient {
                id,
                listen,
                done: d2,
            })
        });
        sim.kernel.agent_connect(id, listen, 100_000_000, 200_000);
        (sim, done)
    }

    #[test]
    fn end_to_end_request_flow() {
        let (mut sim, done) = toy_setup(8);
        sim.run_until_guarded(SimTime::from_secs(1), 2_000_000);
        assert!(
            done.get() > 100,
            "expected many completed requests, got {}",
            done.get()
        );
        assert_eq!(sim.kernel.metrics.requests.total(), done.get());
        // Each 8 KB response body should have produced >= body bytes.
        assert!(sim.kernel.metrics.bytes_out.total() >= done.get() * 8 * 1024);
    }

    #[test]
    fn first_request_faults_from_disk_then_caches() {
        let (mut sim, done) = toy_setup(64);
        sim.run_until(SimTime::from_millis(200));
        assert!(done.get() > 1);
        // 64 KB = 16 pages: one clustered read for the data (plus one for
        // metadata would be issued by stat; the toy server skips stat).
        assert!(sim.kernel.metrics.disk_reads.total() >= 1);
        assert!(sim.kernel.disk.bytes_read >= 16 * PAGE_SIZE);
        // After the first fetch the file is cached: disk reads must not
        // scale with request count.
        let reads_early = sim.kernel.metrics.disk_reads.total();
        sim.run_until(SimTime::from_millis(400));
        assert_eq!(sim.kernel.metrics.disk_reads.total(), reads_early);
    }

    #[test]
    fn throughput_is_cpu_plausible() {
        let (mut sim, done) = toy_setup(1);
        sim.kernel.metrics.open_window(sim.kernel.now());
        sim.run_until(SimTime::from_secs(2));
        let rate = done.get() as f64 / 2.0;
        // A single-process blocking server on the FreeBSD profile should
        // push at least several hundred small requests per second but
        // can't beat the fixed-path cost bound (~3.5k/s).
        assert!(rate > 300.0, "rate {rate}");
        assert!(rate < 6_000.0, "rate {rate}");
    }

    #[test]
    fn select_wakes_on_listen_readiness() {
        // A SPED-style accept loop: select on the listen socket, accept,
        // then close immediately.
        struct SelectServer {
            listen: ListenId,
            accepted: std::rc::Rc<std::cell::Cell<u64>>,
        }
        impl ProcessLogic for SelectServer {
            fn on_run(&mut self, _pid: Pid, k: &mut Kernel, c: Completion) {
                match c {
                    Completion::SelectReady(ready) => {
                        assert!(ready.contains(&Fd::Listen(self.listen)));
                        k.sys_accept(self.listen, Blocking::No);
                    }
                    Completion::Accepted(conn) => {
                        self.accepted.set(self.accepted.get() + 1);
                        k.sys_close(conn);
                    }
                    _ => k.sys_select(vec![Fd::Listen(self.listen)]),
                }
            }
        }
        struct OneShot {
            id: AgentId,
            listen: ListenId,
            tries: u32,
        }
        impl Agent for OneShot {
            fn on_event(&mut self, k: &mut Kernel, ev: AgentEvent) {
                if let AgentEvent::Closed(_) = ev {
                    if self.tries > 0 {
                        self.tries -= 1;
                        k.agent_connect(self.id, self.listen, 100_000_000, 200_000);
                    }
                }
            }
        }
        let mut sim = Simulation::new(MachineConfig::freebsd());
        let listen = sim.kernel.add_listen();
        let accepted = std::rc::Rc::new(std::cell::Cell::new(0));
        sim.add_process(
            ProcKind::Process,
            None,
            0,
            "select-server",
            Box::new(SelectServer {
                listen,
                accepted: accepted.clone(),
            }),
        );
        let id = sim.add_agent(|id| {
            Box::new(OneShot {
                id,
                listen,
                tries: 9,
            })
        });
        sim.kernel.agent_connect(id, listen, 100_000_000, 200_000);
        sim.run_until(SimTime::from_millis(100));
        assert_eq!(accepted.get(), 10);
        assert!(sim.kernel.metrics.select_calls.total() >= 10);
    }

    #[test]
    fn slow_client_holds_data_in_sendbuf() {
        // One 64 KB response to a 1 Mb/s client takes ~0.5s on the wire;
        // with a 100 Mb/s client it takes ~6ms. Compare completion times.
        let time_to_done = |bps: u64| {
            let mut sim = Simulation::new(MachineConfig::freebsd());
            let listen = sim.kernel.add_listen();
            let file = sim.kernel.fs.create(64 * 1024, 2);
            sim.add_process(
                ProcKind::Process,
                None,
                0,
                "server",
                Box::new(ToyServer {
                    listen,
                    file,
                    size: 64 * 1024,
                    state: Toy::Accepting,
                }),
            );
            let done = std::rc::Rc::new(std::cell::Cell::new(0u64));
            let d = done.clone();
            struct Once {
                done: std::rc::Rc<std::cell::Cell<u64>>,
            }
            impl Agent for Once {
                fn on_event(&mut self, k: &mut Kernel, ev: AgentEvent) {
                    match ev {
                        AgentEvent::Connected(conn) => k.agent_send(conn, 300, 0),
                        AgentEvent::ResponseComplete { .. } => self.done.set(self.done.get() + 1),
                        _ => {}
                    }
                }
            }
            let id = sim.add_agent(move |_| Box::new(Once { done: d }));
            sim.kernel.agent_connect(id, listen, bps, 200_000);
            let mut t = SimTime::ZERO;
            while done.get() == 0 {
                assert!(sim.step(), "simulation stalled");
                t = sim.kernel.now();
                assert!(t < SimTime::from_secs(10));
            }
            t
        };
        let fast = time_to_done(100_000_000);
        let slow = time_to_done(1_000_000);
        // The fast case still pays the initial ~10 ms disk fetch, so the
        // ratio is bounded by that, not by the 100x link-rate ratio.
        assert!(
            slow.as_nanos() > 20 * fast.as_nanos(),
            "slow {slow}, fast {fast}"
        );
        assert!(slow > SimTime::from_millis(400));
    }

    #[test]
    fn cpu_busy_time_tracks_dispatches() {
        let (mut sim, _) = toy_setup(1);
        sim.kernel.metrics.open_window(sim.kernel.now());
        sim.run_until(SimTime::from_secs(1));
        let busy = sim.kernel.metrics.cpu_busy_ns;
        assert!(busy > 100 * MILLI, "busy {busy}");
        assert!(busy <= SEC + MILLI, "busy {busy}");
    }
}
