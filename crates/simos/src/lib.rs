//! A simulated 1999-era uniprocessor UNIX machine for the Flash paper
//! reproduction.
//!
//! The crate models the parts of an operating system that the paper's
//! argument depends on:
//!
//! * a **CPU scheduler** with context-switch and thread-switch costs
//!   ([`kernel`], [`proc`]);
//! * a **unified page cache** sized by physical memory minus process and
//!   application memory ([`pagecache`], [`config`]);
//! * a **mechanical disk** with seek/rotation/transfer times and C-LOOK
//!   scheduling ([`disk`]);
//! * a **network** of per-connection TCP send buffers behind a shared NIC
//!   with per-client link rates ([`net`]);
//! * a **syscall layer** ([`kernel::Kernel`]) whose file operations block
//!   the caller on a page-cache miss *even in non-blocking mode* — the
//!   1999 UNIX behaviour (§3.3 of the paper) that SPED servers suffer
//!   from and AMPED's helper processes work around.
//!
//! Two OS cost profiles ([`profile::OsProfile::freebsd`],
//! [`profile::OsProfile::solaris`]) reproduce the paper's two testbeds.
//!
//! Server architectures (in `flash-core`) implement
//! [`sim::ProcessLogic`]; workload clients (in `flash-workload`)
//! implement [`sim::Agent`]; a [`sim::Simulation`] ties them together.

pub mod config;
pub mod disk;
pub mod fs;
pub mod ids;
pub mod kernel;
pub mod metrics;
pub mod net;
pub mod pagecache;
pub mod proc;
pub mod profile;
pub mod sim;
pub mod syscall;

pub use config::{MachineConfig, PAGE_SIZE};
pub use ids::{AgentId, ConnId, Fd, FileId, ListenId, Pid, PipeId};
pub use kernel::{AgentEvent, Kernel, SendSrc};
pub use profile::OsProfile;
pub use sim::{Agent, ProcessLogic, Simulation};
pub use syscall::{Blocking, Completion, PipeMsg};
