//! Run metrics: what an experiment measures.
//!
//! A run has a warm-up phase (caches filling, connections ramping) and a
//! measurement window; [`Metrics::open_window`] discards warm-up counts.
//! Bandwidth and request rate — the paper's reported quantities — are
//! computed over the window.

use flash_simcore::stats::{Counter, Histogram};
use flash_simcore::time::Nanos;
use flash_simcore::SimTime;

/// Counters and distributions collected during a simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    window_start: SimTime,
    /// Response bytes delivered to clients (headers + bodies).
    pub bytes_out: Counter,
    /// HTTP responses fully delivered to clients.
    pub requests: Counter,
    /// Connections accepted by the server.
    pub conns_accepted: Counter,
    /// SYNs dropped due to a full accept queue.
    pub syn_drops: Counter,
    /// Disk read requests issued to the device.
    pub disk_reads: Counter,
    /// Bytes read from the disk media.
    pub disk_bytes: Counter,
    /// Process/thread context switches.
    pub ctx_switches: Counter,
    /// `select` invocations.
    pub select_calls: Counter,
    /// Descriptors returned ready across all `select` calls (the paper's
    /// §6.4 aggregation effect: more ready fds per call amortizes cost).
    pub select_ready_fds: Counter,
    /// CPU busy time within the window.
    pub cpu_busy_ns: u64,
    /// Disk busy time within the window.
    pub disk_busy_ns: u64,
    /// End-to-end response latency (request sent → last byte received).
    pub response_latency: Histogram,
}

impl Metrics {
    /// Starts the measurement window at `now`, zeroing all counters.
    pub fn open_window(&mut self, now: SimTime) {
        *self = Metrics {
            window_start: now,
            ..Metrics::default()
        };
    }

    /// Start of the measurement window.
    pub fn window_start(&self) -> SimTime {
        self.window_start
    }

    /// Window length at time `now`.
    pub fn elapsed(&self, now: SimTime) -> Nanos {
        now.since(self.window_start)
    }

    /// Delivered bandwidth in Mb/s over the window.
    pub fn bandwidth_mbps(&self, now: SimTime) -> f64 {
        self.bytes_out.megabits_per_sec(self.elapsed(now))
    }

    /// Completed requests per second over the window.
    pub fn request_rate(&self, now: SimTime) -> f64 {
        self.requests.rate_per_sec(self.elapsed(now))
    }

    /// CPU utilization in [0, 1] over the window.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        let e = self.elapsed(now);
        if e == 0 {
            0.0
        } else {
            self.cpu_busy_ns as f64 / e as f64
        }
    }

    /// Disk utilization in [0, 1] over the window.
    pub fn disk_utilization(&self, now: SimTime) -> f64 {
        let e = self.elapsed(now);
        if e == 0 {
            0.0
        } else {
            self.disk_busy_ns as f64 / e as f64
        }
    }

    /// Mean ready descriptors per `select` call.
    pub fn select_aggregation(&self) -> f64 {
        if self.select_calls.total() == 0 {
            0.0
        } else {
            self.select_ready_fds.total() as f64 / self.select_calls.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_simcore::time::SEC;

    #[test]
    fn window_resets_counters() {
        let mut m = Metrics::default();
        m.bytes_out.add(1_000_000);
        m.requests.add(10);
        m.open_window(SimTime(5 * SEC));
        assert_eq!(m.bytes_out.total(), 0);
        assert_eq!(m.requests.total(), 0);
        assert_eq!(m.window_start(), SimTime(5 * SEC));
    }

    #[test]
    fn rates_use_window_not_absolute_time() {
        let mut m = Metrics::default();
        m.open_window(SimTime(10 * SEC));
        m.bytes_out.add(12_500_000); // 100 Mb
        m.requests.add(500);
        let now = SimTime(11 * SEC);
        assert!((m.bandwidth_mbps(now) - 100.0).abs() < 1e-9);
        assert!((m.request_rate(now) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn utilizations_bounded() {
        let mut m = Metrics::default();
        m.open_window(SimTime::ZERO);
        m.cpu_busy_ns = SEC / 2;
        m.disk_busy_ns = SEC / 4;
        let now = SimTime(SEC);
        assert!((m.cpu_utilization(now) - 0.5).abs() < 1e-9);
        assert!((m.disk_utilization(now) - 0.25).abs() < 1e-9);
        assert_eq!(Metrics::default().cpu_utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn select_aggregation_mean() {
        let mut m = Metrics::default();
        assert_eq!(m.select_aggregation(), 0.0);
        m.select_calls.add(4);
        m.select_ready_fds.add(10);
        assert!((m.select_aggregation() - 2.5).abs() < 1e-9);
    }
}
