//! Process and thread table.
//!
//! Processes are the schedulable entities: full processes (own address
//! space), kernel threads (shared address space, cheaper switches), and
//! the helper/CGI processes AMPED spawns. Each entry tracks its scheduler
//! state, resident memory (which competes with the page cache), and the
//! completion value to deliver at its next dispatch.

use flash_simcore::time::Nanos;

use crate::ids::{ConnId, Fd, Pid, PipeId};
use crate::syscall::{Completion, PendingOp};

/// What kind of schedulable entity this is (affects switch cost and
/// memory accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcKind {
    /// A full process with its own address space.
    Process,
    /// A kernel thread sharing an address space with its group.
    Thread,
}

/// Scheduler state of a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcState {
    /// On the run queue or currently executing.
    Runnable,
    /// Waiting for a connection to arrive on a listen socket.
    BlockedAccept,
    /// Waiting for request bytes on a connection.
    BlockedConnRead(ConnId),
    /// Waiting for send-buffer space on a connection.
    BlockedConnWrite(ConnId),
    /// Waiting for a message on a pipe.
    BlockedPipe(PipeId),
    /// Waiting for a disk read (page fault, `open`/`stat` metadata, ...).
    BlockedDisk,
    /// Waiting in `select` for any registered fd to become ready.
    BlockedSelect,
    /// Waiting for a timer.
    Sleeping,
    /// Exited; never scheduled again.
    Exited,
}

/// One process-table entry.
#[derive(Debug)]
pub struct Proc {
    /// Kind (process or thread).
    pub kind: ProcKind,
    /// Address-space group: threads of one process share a group, and
    /// switches within a group cost `thread_switch_ns` instead of
    /// `ctx_switch_ns`.
    pub group: u32,
    /// Resident memory charged against the page cache.
    pub mem_bytes: u64,
    /// Scheduler state.
    pub state: ProcState,
    /// Completion to deliver at the next dispatch.
    pub completion: Option<Completion>,
    /// CPU cost to charge at the next dispatch (e.g. the copy cost of a
    /// write that completed after a page fault).
    pub pending_charge: Nanos,
    /// The operation to re-evaluate when a disk read this process waits
    /// on completes.
    pub pending_op: Option<PendingOp>,
    /// Select interest set (only while in `BlockedSelect`).
    pub select_interest: Vec<Fd>,
    /// Debug label ("flash-main", "helper-3", "mp-17").
    pub label: String,
}

impl Proc {
    /// Creates a runnable entry with an initial `Start` completion.
    pub fn new(kind: ProcKind, group: u32, mem_bytes: u64, label: String) -> Self {
        Proc {
            kind,
            group,
            mem_bytes,
            state: ProcState::Runnable,
            completion: Some(Completion::Start),
            pending_charge: 0,
            pending_op: None,
            select_interest: Vec::new(),
            label,
        }
    }
}

/// The process table.
#[derive(Debug, Default)]
pub struct ProcTable {
    entries: Vec<Proc>,
}

impl ProcTable {
    /// Adds an entry, returning its pid.
    pub fn add(&mut self, p: Proc) -> Pid {
        self.entries.push(p);
        Pid(self.entries.len() as u32 - 1)
    }

    /// Immutable access.
    pub fn get(&self, pid: Pid) -> &Proc {
        &self.entries[pid.0 as usize]
    }

    /// Mutable access.
    pub fn get_mut(&mut self, pid: Pid) -> &mut Proc {
        &mut self.entries[pid.0 as usize]
    }

    /// Number of entries (including exited ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total resident memory of all live processes, counting each thread
    /// group's address space once plus per-thread stack.
    pub fn resident_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|p| p.state != ProcState::Exited)
            .map(|p| p.mem_bytes)
            .sum()
    }

    /// Iterates over live pids.
    pub fn pids(&self) -> impl Iterator<Item = Pid> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, p)| p.state != ProcState::Exited)
            .map(|(i, _)| Pid(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut t = ProcTable::default();
        let a = t.add(Proc::new(ProcKind::Process, 0, 1_000_000, "a".into()));
        let b = t.add(Proc::new(ProcKind::Thread, 1, 65_536, "b".into()));
        assert_eq!(a, Pid(0));
        assert_eq!(b, Pid(1));
        assert_eq!(t.get(a).label, "a");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resident_memory_excludes_exited() {
        let mut t = ProcTable::default();
        let a = t.add(Proc::new(ProcKind::Process, 0, 1_000_000, "a".into()));
        t.add(Proc::new(ProcKind::Process, 1, 500_000, "b".into()));
        assert_eq!(t.resident_bytes(), 1_500_000);
        t.get_mut(a).state = ProcState::Exited;
        assert_eq!(t.resident_bytes(), 500_000);
        assert_eq!(t.pids().count(), 1);
    }

    #[test]
    fn new_entries_start_runnable_with_start_completion() {
        let p = Proc::new(ProcKind::Process, 0, 0, "x".into());
        assert_eq!(p.state, ProcState::Runnable);
        assert!(matches!(p.completion, Some(Completion::Start)));
        assert_eq!(p.pending_charge, 0);
    }
}
