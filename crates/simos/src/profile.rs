//! Operating-system cost profiles.
//!
//! The paper evaluates every server on two operating systems — Solaris 2.6
//! and FreeBSD 2.2.6 — on identical hardware (333 MHz Pentium II, 128 MB,
//! multiple 100 Mbit Ethernets), and finds that FreeBSD's network stack is
//! substantially cheaper while FreeBSD 2.2.6 lacks kernel threads entirely.
//! An [`OsProfile`] captures the per-operation CPU costs of such an OS; the
//! two presets are calibrated so the simulated single-file test lands in the
//! ranges of the paper's Figures 6 and 7 (FreeBSD ≈ 3.4k conn/s small files
//! and ≈ 240 Mb/s large cached files; Solaris ≈ 1.2k conn/s and ≈ 110 Mb/s).

use flash_simcore::time::Nanos;

/// Per-operation CPU costs and capabilities of a simulated operating system.
///
/// All `*_ns` fields are charged to the calling process on the simulated
/// CPU. Per-byte costs are `f64` because realistic values are fractional
/// nanoseconds-per-byte.
#[derive(Debug, Clone)]
pub struct OsProfile {
    /// Human-readable name used in reports ("FreeBSD", "Solaris").
    pub name: &'static str,
    /// Fixed cost of entering/leaving the kernel for a trivial syscall.
    pub syscall_ns: Nanos,
    /// Cost of `accept(2)` (allocating the socket, copying the address).
    pub accept_ns: Nanos,
    /// Cost of reading a request from a socket, excluding per-byte copy.
    pub sock_read_ns: Nanos,
    /// Cost of a `writev(2)` call, excluding per-byte copy.
    pub writev_ns: Nanos,
    /// Per-byte cost of moving data through the network stack
    /// (copy + checksum + driver), charged at `writev` time.
    pub net_per_byte_ns: f64,
    /// Additional per-byte cost when a `writev` region is misaligned
    /// (the §5.5 byte-position alignment problem).
    pub misalign_extra_per_byte_ns: f64,
    /// Per-byte cost of an in-memory `read(2)`-style copy into a user
    /// buffer (servers that do not use `mmap` pay this on every send,
    /// on top of the network per-byte cost).
    pub file_copy_per_byte_ns: f64,
    /// Cost of `select(2)`: fixed part.
    pub select_ns: Nanos,
    /// Cost of `select(2)`: per descriptor scanned.
    pub select_per_fd_ns: Nanos,
    /// Cost of `open(2)`/`stat(2)` per pathname component
    /// (directory lookup, permission checks), excluding disk I/O.
    pub path_component_ns: Nanos,
    /// Fixed cost of `open(2)`/`stat(2)`.
    pub stat_ns: Nanos,
    /// Cost of establishing one `mmap(2)` mapping.
    pub mmap_ns: Nanos,
    /// Cost of removing a mapping.
    pub munmap_ns: Nanos,
    /// Fixed cost of `mincore(2)`.
    pub mincore_ns: Nanos,
    /// Per-page cost of `mincore(2)`.
    pub mincore_per_page_ns: Nanos,
    /// Cost of sending a small message over a pipe (one syscall each side
    /// is charged separately via [`OsProfile::syscall_ns`]; this is the
    /// extra data-touch cost).
    pub pipe_ns: Nanos,
    /// Cost of a process-to-process context switch.
    pub ctx_switch_ns: Nanos,
    /// Cost of a thread-to-thread switch inside one address space.
    pub thread_switch_ns: Nanos,
    /// Cost of `fork(2)` (used when spawning helpers and CGI processes).
    pub fork_ns: Nanos,
    /// Cost of closing a connection (protocol control block teardown).
    pub close_ns: Nanos,
    /// Whether the OS supports kernel threads. FreeBSD 2.2.6 does not,
    /// which is why the paper has no MT results on FreeBSD.
    pub kernel_threads: bool,
    /// Per-request CPU inflation while memory is overcommitted, in
    /// nanoseconds per overcommitted megabyte (crude paging model; only
    /// matters for the 500-process MP runs of Figure 12).
    pub paging_ns_per_overcommitted_mb: Nanos,
}

impl OsProfile {
    /// FreeBSD 2.2.6: cheap network stack, no kernel threads.
    pub fn freebsd() -> Self {
        OsProfile {
            name: "FreeBSD",
            syscall_ns: 5_000,
            accept_ns: 40_000,
            sock_read_ns: 25_000,
            writev_ns: 22_000,
            net_per_byte_ns: 28.0,
            misalign_extra_per_byte_ns: 9.0,
            file_copy_per_byte_ns: 18.0,
            select_ns: 15_000,
            select_per_fd_ns: 180,
            path_component_ns: 25_000,
            stat_ns: 9_000,
            mmap_ns: 30_000,
            munmap_ns: 22_000,
            mincore_ns: 7_000,
            mincore_per_page_ns: 250,
            pipe_ns: 4_000,
            ctx_switch_ns: 14_000,
            thread_switch_ns: 6_000,
            fork_ns: 900_000,
            close_ns: 30_000,
            kernel_threads: false,
            paging_ns_per_overcommitted_mb: 1_500,
        }
    }

    /// Solaris 2.6: every kernel path noticeably more expensive (the paper
    /// measures up to ~50% lower throughput than FreeBSD), kernel threads
    /// available.
    pub fn solaris() -> Self {
        OsProfile {
            name: "Solaris",
            syscall_ns: 14_000,
            accept_ns: 200_000,
            sock_read_ns: 110_000,
            writev_ns: 90_000,
            net_per_byte_ns: 68.0,
            misalign_extra_per_byte_ns: 9.0,
            file_copy_per_byte_ns: 40.0,
            select_ns: 60_000,
            select_per_fd_ns: 420,
            path_component_ns: 60_000,
            stat_ns: 26_000,
            mmap_ns: 48_000,
            munmap_ns: 40_000,
            mincore_ns: 20_000,
            mincore_per_page_ns: 700,
            pipe_ns: 11_000,
            ctx_switch_ns: 40_000,
            thread_switch_ns: 24_000,
            fork_ns: 2_500_000,
            close_ns: 150_000,
            kernel_threads: true,
            paging_ns_per_overcommitted_mb: 1_500,
        }
    }

    /// Approximate fixed CPU cost of one small static request on the fast
    /// path (all caches hot), excluding per-byte costs. Used only by tests
    /// and documentation to sanity-check calibration.
    pub fn fast_path_fixed_ns(&self) -> Nanos {
        self.accept_ns
            + self.sock_read_ns
            + self.writev_ns
            + self.select_ns
            + self.close_ns
            + 2 * self.syscall_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freebsd_is_cheaper_than_solaris_everywhere() {
        let f = OsProfile::freebsd();
        let s = OsProfile::solaris();
        assert!(f.fast_path_fixed_ns() < s.fast_path_fixed_ns());
        assert!(f.net_per_byte_ns < s.net_per_byte_ns);
        assert!(f.ctx_switch_ns < s.ctx_switch_ns);
        assert!(f.select_ns < s.select_ns);
    }

    #[test]
    fn freebsd_lacks_kernel_threads() {
        assert!(!OsProfile::freebsd().kernel_threads);
        assert!(OsProfile::solaris().kernel_threads);
    }

    #[test]
    fn calibration_orders_of_magnitude() {
        // Small-request fixed path should be in the low hundreds of
        // microseconds: the paper's Figure 7 tops out around 3.4k conn/s on
        // FreeBSD (~290 µs/request) and Figure 6 around 1.2k conn/s on
        // Solaris (~830 µs/request). The fixed path here excludes parsing
        // and event-loop user time, so it must come in below those totals.
        let f = OsProfile::freebsd().fast_path_fixed_ns();
        assert!(f > 80_000 && f < 300_000, "freebsd fixed path {f}ns");
        let s = OsProfile::solaris().fast_path_fixed_ns();
        assert!(s > 250_000 && s < 830_000, "solaris fixed path {s}ns");
        // Large-file bandwidth is dominated by per-byte cost: FreeBSD
        // ~30 ns/B ≈ 260 Mb/s CPU-limited; Solaris ~70 ns/B ≈ 115 Mb/s.
        let bw = |ns: f64| 8.0 * 1000.0 / ns; // Mb/s if CPU-bound
        assert!(bw(OsProfile::freebsd().net_per_byte_ns) > 200.0);
        assert!(bw(OsProfile::solaris().net_per_byte_ns) < 150.0);
    }

    #[test]
    fn thread_switch_cheaper_than_process_switch() {
        for p in [OsProfile::freebsd(), OsProfile::solaris()] {
            assert!(p.thread_switch_ns < p.ctx_switch_ns, "{}", p.name);
        }
    }
}
