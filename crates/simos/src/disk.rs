//! Mechanical disk model with FCFS or C-LOOK scheduling.
//!
//! The disk serves one request at a time; service time is a seek (scaling
//! with the square root of the head travel distance, a standard seek-curve
//! approximation), average rotational delay, fixed overhead, and media
//! transfer time. Pending requests queue either FCFS or C-LOOK ("elevator").
//!
//! §4.1 of the paper ("Disk utilization") is directly about this model:
//! architectures that can keep multiple disk requests outstanding (MP, MT,
//! AMPED with several helpers) benefit from disk-head scheduling, while
//! SPED can only ever have one request in flight.

use flash_simcore::time::Nanos;

use crate::config::{DiskParams, PAGE_SIZE};
use crate::ids::{FileId, Pid};

/// One disk read request covering a contiguous page range of a file.
#[derive(Debug, Clone)]
pub struct DiskReq {
    /// File whose pages are being read.
    pub file: FileId,
    /// First page of the range.
    pub first_page: u64,
    /// Number of pages.
    pub npages: u64,
    /// First disk block of the range.
    pub start_block: u64,
    /// Processes to wake when the read completes. More than one when
    /// several processes faulted on the same pages (the kernel coalesces
    /// overlapping requests instead of reading the data twice).
    pub waiters: Vec<Pid>,
}

impl DiskReq {
    /// True if this request's page range fully covers `[first, first+n)`
    /// of `file`.
    pub fn covers(&self, file: FileId, first: u64, n: u64) -> bool {
        self.file == file && self.first_page <= first && first + n <= self.first_page + self.npages
    }
}

/// The disk device: an active request plus a pending queue.
#[derive(Debug)]
pub struct Disk {
    params: DiskParams,
    queue: Vec<DiskReq>,
    active: Option<DiskReq>,
    head_block: u64,
    /// Total requests served.
    pub served: u64,
    /// Total bytes transferred from the media.
    pub bytes_read: u64,
    /// Total time the device was busy.
    pub busy_ns: Nanos,
}

impl Disk {
    /// Creates an idle disk with the head parked at block 0.
    pub fn new(params: DiskParams) -> Self {
        Disk {
            params,
            queue: Vec::new(),
            active: None,
            head_block: 0,
            served: 0,
            bytes_read: 0,
            busy_ns: 0,
        }
    }

    /// True when no request is active.
    pub fn is_idle(&self) -> bool {
        self.active.is_none()
    }

    /// Pending queue depth (not counting the active request).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// If an in-flight or queued request already covers the range, adds
    /// `pid` to its waiters and returns true. Used to coalesce concurrent
    /// faults on the same pages.
    pub fn join_if_covered(&mut self, file: FileId, first: u64, n: u64, pid: Pid) -> bool {
        if let Some(a) = &mut self.active {
            if a.covers(file, first, n) {
                a.waiters.push(pid);
                return true;
            }
        }
        for r in &mut self.queue {
            if r.covers(file, first, n) {
                r.waiters.push(pid);
                return true;
            }
        }
        false
    }

    /// Enqueues a request. Returns the completion delay if the disk was
    /// idle and the request started immediately; `None` if it queued.
    pub fn submit(&mut self, req: DiskReq) -> Option<Nanos> {
        self.queue.push(req);
        if self.active.is_none() {
            self.start_next()
        } else {
            None
        }
    }

    /// Marks the active request complete and returns it along with the
    /// completion delay of the next request, if one started.
    ///
    /// # Panics
    ///
    /// Panics if no request is active (a kernel sequencing bug).
    pub fn complete(&mut self) -> (DiskReq, Option<Nanos>) {
        let done = self
            .active
            .take()
            .expect("disk completion with no active request");
        let next = self.start_next();
        (done, next)
    }

    fn start_next(&mut self) -> Option<Nanos> {
        if self.queue.is_empty() {
            return None;
        }
        let idx = if self.params.elevator {
            // C-LOOK: the closest request at or beyond the head; if none,
            // sweep back to the lowest block.
            let beyond = self
                .queue
                .iter()
                .enumerate()
                .filter(|(_, r)| r.start_block >= self.head_block)
                .min_by_key(|(_, r)| r.start_block);
            match beyond {
                Some((i, _)) => i,
                None => self
                    .queue
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| r.start_block)
                    .map(|(i, _)| i)
                    .expect("non-empty queue"),
            }
        } else {
            0
        };
        let req = self.queue.swap_remove(idx);
        let t = self.service_time(&req);
        self.head_block = req.start_block + req.npages;
        self.served += 1;
        self.bytes_read += req.npages * PAGE_SIZE;
        self.busy_ns += t;
        self.active = Some(req);
        Some(t)
    }

    /// Service time for a request given the current head position.
    pub fn service_time(&self, req: &DiskReq) -> Nanos {
        let p = &self.params;
        let dist = self.head_block.abs_diff(req.start_block);
        let seek = if dist == 0 {
            0
        } else {
            let frac = (dist as f64 / p.total_blocks as f64).min(1.0);
            p.min_seek_ns + ((p.full_seek_ns - p.min_seek_ns) as f64 * frac.sqrt()) as Nanos
        };
        let bytes = req.npages * PAGE_SIZE;
        let transfer = (bytes as f64 / p.transfer_bytes_per_sec as f64 * 1e9) as Nanos;
        p.overhead_ns + seek + p.rotation_ns + transfer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(file: u32, first: u64, n: u64, block: u64) -> DiskReq {
        DiskReq {
            file: FileId(file),
            first_page: first,
            npages: n,
            start_block: block,
            waiters: vec![Pid(1)],
        }
    }

    #[test]
    fn idle_disk_starts_immediately() {
        let mut d = Disk::new(DiskParams::default());
        let t = d.submit(req(1, 0, 4, 1000));
        assert!(t.is_some());
        assert!(!d.is_idle());
        let (done, next) = d.complete();
        assert_eq!(done.file, FileId(1));
        assert!(next.is_none());
        assert!(d.is_idle());
    }

    #[test]
    fn service_time_grows_with_distance_and_size() {
        let d = Disk::new(DiskParams::default());
        let near_small = d.service_time(&req(1, 0, 1, 10));
        let far_small = d.service_time(&req(1, 0, 1, 1_500_000));
        let near_big = d.service_time(&req(1, 0, 64, 10));
        assert!(far_small > near_small);
        assert!(near_big > near_small);
    }

    #[test]
    fn elevator_picks_ascending_blocks() {
        let mut d = Disk::new(DiskParams::default());
        // First request (starts immediately) moves the head to ~500.
        d.submit(req(1, 0, 1, 500));
        d.submit(req(2, 0, 1, 100_000));
        d.submit(req(3, 0, 1, 2_000));
        d.submit(req(4, 0, 1, 50_000));
        let mut order = Vec::new();
        let (r, mut next) = d.complete();
        order.push(r.file.0);
        while next.is_some() {
            let (r, n) = d.complete();
            order.push(r.file.0);
            next = n;
        }
        assert_eq!(order, vec![1, 3, 4, 2], "C-LOOK ascending sweep");
    }

    #[test]
    fn fcfs_preserves_submission_order() {
        let mut d = Disk::new(DiskParams {
            elevator: false,
            ..DiskParams::default()
        });
        d.submit(req(1, 0, 1, 500));
        d.submit(req(2, 0, 1, 100_000));
        d.submit(req(3, 0, 1, 2_000));
        let mut order = Vec::new();
        let (r, mut next) = d.complete();
        order.push(r.file.0);
        while next.is_some() {
            let (r, n) = d.complete();
            order.push(r.file.0);
            next = n;
        }
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn elevator_beats_fcfs_on_scattered_load() {
        // Same scattered request pattern served both ways; the elevator
        // must finish in less total busy time.
        let pattern: Vec<u64> = vec![900_000, 10_000, 800_000, 20_000, 700_000, 30_000];
        let total = |elevator: bool| {
            let mut d = Disk::new(DiskParams {
                elevator,
                ..DiskParams::default()
            });
            for (i, b) in pattern.iter().enumerate() {
                d.submit(req(i as u32 + 1, 0, 4, *b));
            }
            let (_, mut next) = d.complete();
            while next.is_some() {
                let (_, n) = d.complete();
                next = n;
            }
            d.busy_ns
        };
        let fcfs = total(false);
        let clook = total(true);
        assert!(
            clook < fcfs,
            "C-LOOK {clook}ns should beat FCFS {fcfs}ns on scattered load"
        );
    }

    #[test]
    fn join_coalesces_covered_ranges() {
        let mut d = Disk::new(DiskParams::default());
        d.submit(req(1, 0, 8, 1000));
        assert!(d.join_if_covered(FileId(1), 2, 3, Pid(7)));
        assert!(
            !d.join_if_covered(FileId(1), 6, 4, Pid(8)),
            "partial overlap"
        );
        assert!(!d.join_if_covered(FileId(2), 0, 1, Pid(9)), "other file");
        let (done, _) = d.complete();
        assert_eq!(done.waiters, vec![Pid(1), Pid(7)]);
    }

    #[test]
    fn counters_accumulate() {
        let mut d = Disk::new(DiskParams::default());
        d.submit(req(1, 0, 4, 100));
        d.submit(req(2, 0, 2, 200));
        let (_, next) = d.complete();
        assert!(next.is_some());
        d.complete();
        assert_eq!(d.served, 2);
        assert_eq!(d.bytes_read, 6 * PAGE_SIZE);
        assert!(d.busy_ns > 0);
    }
}
