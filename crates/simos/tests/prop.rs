//! Property tests for the OS substrates: page cache and disk scheduler.

use flash_simos::config::{DiskParams, PAGE_SIZE};
use flash_simos::disk::{Disk, DiskReq};
use flash_simos::pagecache::PageCache;
use flash_simos::{FileId, Pid};
use proptest::prelude::*;

/// Random page-cache operation.
#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u64),
    Touch(u32, u64),
    Resident(u32, u64),
    SetCapacity(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..8, 0u64..64).prop_map(|(f, p)| Op::Insert(f, p)),
        (0u32..8, 0u64..64).prop_map(|(f, p)| Op::Touch(f, p)),
        (0u32..8, 0u64..64).prop_map(|(f, p)| Op::Resident(f, p)),
        (1u64..32).prop_map(Op::SetCapacity),
    ]
}

proptest! {
    /// Under any operation sequence: the cache never exceeds capacity,
    /// an inserted key is immediately resident, and `resident` agrees
    /// with a reference set.
    #[test]
    fn page_cache_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        let mut cache = PageCache::new(16);
        let mut capacity = 16u64;
        // Reference model: most-recent-use ordered vector of keys.
        let mut model: Vec<(FileId, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(f, p) => {
                    let key = (FileId(f), p);
                    cache.insert(key);
                    model.retain(|k| *k != key);
                    model.push(key);
                    while model.len() as u64 > capacity {
                        model.remove(0);
                    }
                }
                Op::Touch(f, p) => {
                    let key = (FileId(f), p);
                    let hit = cache.touch(key);
                    let model_hit = model.contains(&key);
                    prop_assert_eq!(hit, model_hit);
                    if model_hit {
                        model.retain(|k| *k != key);
                        model.push(key);
                    }
                }
                Op::Resident(f, p) => {
                    let key = (FileId(f), p);
                    prop_assert_eq!(cache.resident(key), model.contains(&key));
                }
                Op::SetCapacity(c) => {
                    cache.set_capacity(c);
                    capacity = c;
                    while model.len() as u64 > capacity {
                        model.remove(0);
                    }
                }
            }
            prop_assert!(cache.len() <= capacity);
            prop_assert_eq!(cache.len(), model.len() as u64);
        }
    }

    /// The disk serves every submitted request exactly once, regardless
    /// of scheduling policy, and the elevator never loses or duplicates.
    #[test]
    fn disk_serves_all_requests(blocks in proptest::collection::vec(0u64..1_000_000, 1..64),
                                elevator in any::<bool>()) {
        let mut disk = Disk::new(DiskParams { elevator, ..DiskParams::default() });
        for (i, b) in blocks.iter().enumerate() {
            disk.submit(DiskReq {
                file: FileId(i as u32 + 1),
                first_page: 0,
                npages: 1,
                start_block: *b,
                waiters: vec![Pid(0)],
            });
        }
        let mut served = Vec::new();
        let (r, mut next) = disk.complete();
        served.push(r.file.0);
        while next.is_some() {
            let (r, n) = disk.complete();
            served.push(r.file.0);
            next = n;
        }
        served.sort_unstable();
        let expected: Vec<u32> = (1..=blocks.len() as u32).collect();
        prop_assert_eq!(served, expected);
        prop_assert!(disk.is_idle());
        prop_assert_eq!(disk.bytes_read, blocks.len() as u64 * PAGE_SIZE);
    }

    /// Service time is always positive and grows with request size.
    #[test]
    fn disk_service_time_sane(npages in 1u64..512, block in 0u64..2_000_000) {
        let disk = Disk::new(DiskParams::default());
        let small = disk.service_time(&DiskReq {
            file: FileId(1), first_page: 0, npages: 1, start_block: block,
            waiters: vec![],
        });
        let big = disk.service_time(&DiskReq {
            file: FileId(1), first_page: 0, npages, start_block: block,
            waiters: vec![],
        });
        prop_assert!(small > 0);
        prop_assert!(big >= small);
    }
}
