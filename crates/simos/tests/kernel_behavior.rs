//! Focused kernel-behaviour tests: pipes, select-on-pipe, timers, partial
//! writes, backlog overflow, and memory-pressure effects — driven through
//! tiny closure-based process logics.

use std::cell::Cell;
use std::rc::Rc;

use flash_simcore::SimTime;
use flash_simos::kernel::SendSrc;
use flash_simos::proc::ProcKind;
use flash_simos::sim::FnLogic;
use flash_simos::{Agent, AgentEvent, Blocking, Completion, Fd, Kernel, MachineConfig, Simulation};

/// A client that connects once and sends one request; counts data bytes.
struct OneShot {
    bytes: Rc<Cell<u64>>,
    request_bytes: u64,
}

impl Agent for OneShot {
    fn on_event(&mut self, k: &mut Kernel, ev: AgentEvent) {
        match ev {
            AgentEvent::Connected(conn) => k.agent_send(conn, self.request_bytes, 0),
            AgentEvent::Data { bytes, .. } => self.bytes.set(self.bytes.get() + bytes),
            _ => {}
        }
    }
}

#[test]
fn blocking_pipe_recv_wakes_on_send() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let pipe = sim.kernel.add_pipe();
    let got = Rc::new(Cell::new(0u64));
    let got2 = Rc::clone(&got);
    // Reader blocks first, then the writer delivers.
    sim.add_process(
        ProcKind::Process,
        None,
        0,
        "reader",
        Box::new(FnLogic::new(move |_, k: &mut Kernel, c| match c {
            Completion::Start => k.sys_pipe_recv(pipe, Blocking::Yes),
            Completion::PipeMsg { msg, .. } => {
                got2.set(msg.b);
                k.sys_exit();
            }
            other => panic!("{other:?}"),
        })),
    );
    sim.add_process(
        ProcKind::Process,
        None,
        0,
        "writer",
        Box::new(FnLogic::new(move |_, k: &mut Kernel, c| match c {
            Completion::Start => {
                k.sys_sleep(1_000_000); // let the reader block first
            }
            Completion::TimerFired => k.sys_pipe_send(
                pipe,
                flash_simos::PipeMsg {
                    op: 9,
                    a: 0,
                    b: 4242,
                    c: 0,
                },
            ),
            Completion::PipeSent => k.sys_exit(),
            other => panic!("{other:?}"),
        })),
    );
    sim.run_until(SimTime::from_millis(100));
    assert_eq!(got.get(), 4242);
}

#[test]
fn select_wakes_on_pipe_readiness() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let pipe = sim.kernel.add_pipe();
    let woke = Rc::new(Cell::new(false));
    let woke2 = Rc::clone(&woke);
    sim.add_process(
        ProcKind::Process,
        None,
        0,
        "selector",
        Box::new(FnLogic::new(move |_, k: &mut Kernel, c| match c {
            Completion::Start => k.sys_select(vec![Fd::Pipe(pipe)]),
            Completion::SelectReady(ready) => {
                assert_eq!(ready, vec![Fd::Pipe(pipe)]);
                woke2.set(true);
                k.sys_exit();
            }
            other => panic!("{other:?}"),
        })),
    );
    sim.add_process(
        ProcKind::Process,
        None,
        0,
        "producer",
        Box::new(FnLogic::new(move |_, k: &mut Kernel, c| match c {
            Completion::Start => k.sys_sleep(500_000),
            Completion::TimerFired => k.sys_pipe_send(pipe, flash_simos::PipeMsg::default()),
            Completion::PipeSent => k.sys_exit(),
            other => panic!("{other:?}"),
        })),
    );
    sim.run_until(SimTime::from_millis(100));
    assert!(woke.get(), "select must wake on pipe data");
}

#[test]
fn writev_is_bounded_by_sendbuf_space() {
    // A server that writes a 1 MB memory body in one call can only get
    // sendbuf_bytes accepted.
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let sendbuf = sim.kernel.cfg.net.sendbuf_bytes;
    let listen = sim.kernel.add_listen();
    let accepted_body = Rc::new(Cell::new(0u64));
    let accepted2 = Rc::clone(&accepted_body);
    sim.add_process(
        ProcKind::Process,
        None,
        0,
        "server",
        Box::new(FnLogic::new(move |_, k: &mut Kernel, c| match c {
            Completion::Start => k.sys_accept(listen, Blocking::Yes),
            Completion::Accepted(conn) => k.sys_send(
                conn,
                0,
                SendSrc::Mem { len: 1_000_000 },
                true,
                Blocking::Yes,
            ),
            Completion::Written { body_bytes, .. } => {
                accepted2.set(body_bytes);
                k.sys_exit();
            }
            other => panic!("{other:?}"),
        })),
    );
    let bytes = Rc::new(Cell::new(0u64));
    let b2 = Rc::clone(&bytes);
    let id = sim.add_agent(move |_| {
        Box::new(OneShot {
            bytes: b2,
            request_bytes: 100,
        })
    });
    sim.kernel.agent_connect(id, listen, 100_000_000, 200_000);
    sim.run_until(SimTime::from_millis(200));
    assert_eq!(accepted_body.get(), sendbuf, "writev clamps to free space");
    assert_eq!(bytes.get(), sendbuf, "client received exactly what drained");
}

#[test]
fn backlog_overflow_drops_syns() {
    let mut machine = MachineConfig::freebsd();
    machine.net.backlog = 4;
    let mut sim = Simulation::new(machine);
    let listen = sim.kernel.add_listen();
    // No server process accepts, so the queue fills at 4.
    for _ in 0..10 {
        let id = sim.add_agent(|_| {
            Box::new(OneShot {
                bytes: Rc::new(Cell::new(0)),
                request_bytes: 10,
            })
        });
        sim.kernel.agent_connect(id, listen, 100_000_000, 200_000);
    }
    sim.run_until(SimTime::from_millis(50));
    assert_eq!(sim.kernel.metrics.syn_drops.total(), 6);
    assert_eq!(sim.kernel.metrics.conns_accepted.total(), 0);
}

#[test]
fn timers_fire_in_order() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let order = Rc::new(std::cell::RefCell::new(Vec::new()));
    for (tag, delay) in [(1u64, 3_000_000u64), (2, 1_000_000), (3, 2_000_000)] {
        let order2 = Rc::clone(&order);
        sim.add_process(
            ProcKind::Process,
            None,
            0,
            format!("t{tag}"),
            Box::new(FnLogic::new(move |_, k: &mut Kernel, c| match c {
                Completion::Start => k.sys_sleep(delay),
                Completion::TimerFired => {
                    order2.borrow_mut().push(tag);
                    k.sys_exit();
                }
                other => panic!("{other:?}"),
            })),
        );
    }
    sim.run_until(SimTime::from_millis(100));
    assert_eq!(*order.borrow(), vec![2, 3, 1]);
}

#[test]
fn process_memory_shrinks_page_cache_and_exit_restores_it() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let before = sim.kernel.cache.capacity();
    let pid = sim.add_process(
        ProcKind::Process,
        None,
        40 * 1024 * 1024,
        "hog",
        Box::new(FnLogic::new(|_, k: &mut Kernel, c| match c {
            Completion::Start => k.sys_sleep(1_000_000),
            Completion::TimerFired => k.sys_exit(),
            other => panic!("{other:?}"),
        })),
    );
    let during = sim.kernel.cache.capacity();
    assert_eq!(before - during, 40 * 1024 * 1024 / flash_simos::PAGE_SIZE);
    sim.run_until(SimTime::from_millis(10));
    assert_eq!(
        sim.kernel.procs.get(pid).state,
        flash_simos::proc::ProcState::Exited
    );
    assert_eq!(sim.kernel.cache.capacity(), before, "exit frees memory");
}

#[test]
fn nonblocking_pipe_recv_returns_wouldblock() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let pipe = sim.kernel.add_pipe();
    let saw = Rc::new(Cell::new(false));
    let saw2 = Rc::clone(&saw);
    sim.add_process(
        ProcKind::Process,
        None,
        0,
        "poller",
        Box::new(FnLogic::new(move |_, k: &mut Kernel, c| match c {
            Completion::Start => k.sys_pipe_recv(pipe, Blocking::No),
            Completion::WouldBlock => {
                saw2.set(true);
                k.sys_exit();
            }
            other => panic!("{other:?}"),
        })),
    );
    sim.run_until(SimTime::from_millis(10));
    assert!(saw.get());
}
