//! Incremental HTTP request parsing.
//!
//! The parser consumes bytes as they arrive from a socket (requests can be
//! split across arbitrarily many reads — slow WAN clients in the paper's
//! §6.4 do exactly this) and never panics on malformed input: every
//! failure is a typed [`ParseError`] that the server maps to a 4xx
//! response.

use bytes::BytesMut;
use std::fmt;

/// Maximum accepted request-header size; larger requests are rejected
/// (defense against unbounded buffering).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// HTTP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET — the only method that returns content.
    Get,
    /// HEAD — headers only.
    Head,
    /// POST — accepted and routed to CGI handling.
    Post,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "HEAD" => Some(Method::Head),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
        })
    }
}

/// HTTP protocol version of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// HTTP/0.9 (bare `GET /path` line).
    Http09,
    /// HTTP/1.0.
    Http10,
    /// HTTP/1.1 (persistent by default).
    Http11,
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Version::Http09 => "HTTP/0.9",
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        })
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Decoded path (no query string), always starting with `/`.
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    /// Protocol version.
    pub version: Version,
    /// Value of the `Connection` header, lower-cased, if present.
    pub connection: Option<String>,
    /// Value of the `Host` header, if present.
    pub host: Option<String>,
    /// Value of the `If-Modified-Since` header, if present (verbatim).
    pub if_modified_since: Option<String>,
}

impl Request {
    /// Whether the connection should persist after this request
    /// (HTTP/1.1 default-on, HTTP/1.0 with `keep-alive`).
    ///
    /// `Connection` is a comma-separated **token list** (RFC 9110
    /// §7.6.1), so `Connection: keep-alive, upgrade` keeps a 1.0
    /// connection alive and `Connection: close, te` closes a 1.1 one —
    /// whole-value string comparison got both of those wrong.
    pub fn keep_alive(&self) -> bool {
        let has_token = |tok: &str| {
            self.connection
                .as_deref()
                .is_some_and(|v| v.split(',').any(|t| t.trim() == tok))
        };
        match self.version {
            Version::Http09 => false,
            Version::Http10 => has_token("keep-alive") && !has_token("close"),
            Version::Http11 => !has_token("close"),
        }
    }

    /// Number of pathname components ("/a/b/c.html" → 3); the simulator
    /// charges per-component translation cost.
    pub fn path_components(&self) -> u32 {
        self.path.split('/').filter(|s| !s.is_empty()).count() as u32
    }
}

/// Why a request failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Request line was not `METHOD SP PATH [SP VERSION]`.
    BadRequestLine,
    /// Method unknown.
    BadMethod,
    /// Version string unknown.
    BadVersion,
    /// A path escaped the document root via `..`.
    PathTraversal,
    /// Header section exceeded [`MAX_HEADER_BYTES`].
    TooLarge,
    /// A header line had no `:` separator.
    BadHeader,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::BadRequestLine => "malformed request line",
            ParseError::BadMethod => "unknown method",
            ParseError::BadVersion => "unknown HTTP version",
            ParseError::PathTraversal => "path escapes document root",
            ParseError::TooLarge => "request header too large",
            ParseError::BadHeader => "malformed header line",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Outcome of feeding bytes to the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseStatus {
    /// Need more bytes.
    Incomplete,
    /// A complete request was parsed.
    Done(Request),
    /// The request is malformed.
    Error(ParseError),
}

/// An incremental request parser. Feed it socket bytes with
/// [`RequestParser::feed`]; it buffers until a full header is present.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: BytesMut,
}

impl RequestParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently buffered (for tests and flow control).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends `bytes` and attempts to parse. On [`ParseStatus::Done`]
    /// the consumed request is removed from the buffer, so pipelined
    /// requests parse one at a time.
    pub fn feed(&mut self, bytes: &[u8]) -> ParseStatus {
        self.buf.extend_from_slice(bytes);
        // The size bound applies to the *current request's* header, not
        // the whole buffer: a burst of pipelined requests buffered
        // together may legitimately exceed MAX_HEADER_BYTES in total
        // while each request stays small. Only search the first
        // MAX_HEADER_BYTES for the terminator — if it isn't there, this
        // request's header really is oversized.
        let search = &self.buf[..self.buf.len().min(MAX_HEADER_BYTES)];
        // An HTTP/0.9 request is a single CRLF- (or LF-) terminated line;
        // 1.0/1.1 headers end with a blank line.
        let Some(line_end) = find(search, b"\n") else {
            return if self.buf.len() > MAX_HEADER_BYTES {
                ParseStatus::Error(ParseError::TooLarge)
            } else {
                ParseStatus::Incomplete
            };
        };
        let first_line = trim_cr(&self.buf[..line_end]);
        let is_09 = !first_line
            .rsplit(|&b| b == b' ')
            .next()
            .is_some_and(|last| last.starts_with(b"HTTP/"));
        let header_end = if is_09 {
            line_end + 1
        } else {
            match find(search, b"\r\n\r\n") {
                Some(i) => i + 4,
                None => match find(search, b"\n\n") {
                    Some(i) => i + 2,
                    None => {
                        // No terminator within the bound: oversized if
                        // more is already buffered, otherwise just
                        // incomplete.
                        return if self.buf.len() > MAX_HEADER_BYTES {
                            ParseStatus::Error(ParseError::TooLarge)
                        } else {
                            ParseStatus::Incomplete
                        };
                    }
                },
            }
        };
        let header = self.buf.split_to(header_end);
        match parse_header(&header) {
            Ok(req) => ParseStatus::Done(req),
            Err(e) => ParseStatus::Error(e),
        }
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

fn parse_header(raw: &[u8]) -> Result<Request, ParseError> {
    let text = String::from_utf8_lossy(raw);
    let mut lines = text.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(ParseError::BadRequestLine)?;
    let target = parts.next().ok_or(ParseError::BadRequestLine)?;
    let version = match parts.next() {
        None => Version::Http09,
        Some("HTTP/1.0") => Version::Http10,
        Some("HTTP/1.1") => Version::Http11,
        Some(v) if v.starts_with("HTTP/") => return Err(ParseError::BadVersion),
        Some(_) => return Err(ParseError::BadRequestLine),
    };
    if parts.next().is_some() {
        return Err(ParseError::BadRequestLine);
    }
    let method = Method::parse(method).ok_or(ParseError::BadMethod)?;
    let (path_raw, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q.to_string())),
        None => (target, None),
    };
    let path = normalize_path(path_raw)?;

    let mut connection = None;
    let mut host = None;
    let mut if_modified_since = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "connection" => connection = Some(value.to_ascii_lowercase()),
            "host" => host = Some(value.to_string()),
            "if-modified-since" => if_modified_since = Some(value.to_string()),
            _ => {}
        }
    }
    Ok(Request {
        method,
        path,
        query,
        version,
        connection,
        host,
        if_modified_since,
    })
}

/// Percent-decodes and normalizes a request path, rejecting traversal
/// outside the document root.
fn normalize_path(raw: &str) -> Result<String, ParseError> {
    let decoded = percent_decode(raw);
    let mut out: Vec<&str> = Vec::new();
    for seg in decoded.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                if out.pop().is_none() {
                    return Err(ParseError::PathTraversal);
                }
            }
            s => out.push(s),
        }
    }
    let mut path = String::from("/");
    path.push_str(&out.join("/"));
    // Preserve a trailing slash (directory request) except on the root.
    if decoded.ends_with('/') && path.len() > 1 {
        path.push('/');
    }
    Ok(path)
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = |b: u8| -> Option<u8> {
                match b {
                    b'0'..=b'9' => Some(b - b'0'),
                    b'a'..=b'f' => Some(b - b'a' + 10),
                    b'A'..=b'F' => Some(b - b'A' + 10),
                    _ => None,
                }
            };
            if let (Some(h), Some(l)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                out.push(h << 4 | l);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ParseStatus {
        RequestParser::new().feed(s.as_bytes())
    }

    fn done(s: &str) -> Request {
        match parse(s) {
            ParseStatus::Done(r) => r,
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_get() {
        let r = done("GET /index.html HTTP/1.0\r\n\r\n");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/index.html");
        assert_eq!(r.version, Version::Http10);
        assert!(!r.keep_alive());
        assert_eq!(r.path_components(), 1);
    }

    #[test]
    fn parses_headers_of_interest() {
        let r = done(
            "GET /a/b.html HTTP/1.0\r\nHost: rice.edu\r\nConnection: Keep-Alive\r\nIf-Modified-Since: Sat, 29 Oct 1994 19:43:31 GMT\r\n\r\n",
        );
        assert_eq!(r.host.as_deref(), Some("rice.edu"));
        assert_eq!(r.connection.as_deref(), Some("keep-alive"));
        assert!(r.keep_alive());
        assert!(r.if_modified_since.is_some());
        assert_eq!(r.path_components(), 2);
    }

    #[test]
    fn http11_is_persistent_by_default() {
        assert!(done("GET / HTTP/1.1\r\nHost: x\r\n\r\n").keep_alive());
        assert!(!done("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
    }

    #[test]
    fn http09_bare_line() {
        let r = done("GET /foo.html\r\n");
        assert_eq!(r.version, Version::Http09);
        assert!(!r.keep_alive());
    }

    #[test]
    fn query_string_split() {
        let r = done("GET /cgi-bin/search?q=flash+server HTTP/1.0\r\n\r\n");
        assert_eq!(r.path, "/cgi-bin/search");
        assert_eq!(r.query.as_deref(), Some("q=flash+server"));
    }

    #[test]
    fn percent_decoding() {
        let r = done("GET /my%20file.html HTTP/1.0\r\n\r\n");
        assert_eq!(r.path, "/my file.html");
    }

    #[test]
    fn dot_segments_collapse() {
        let r = done("GET /a/./b/../c.html HTTP/1.0\r\n\r\n");
        assert_eq!(r.path, "/a/c.html");
    }

    #[test]
    fn traversal_is_rejected() {
        assert_eq!(
            parse("GET /../etc/passwd HTTP/1.0\r\n\r\n"),
            ParseStatus::Error(ParseError::PathTraversal)
        );
        assert_eq!(
            parse("GET /a/../../x HTTP/1.0\r\n\r\n"),
            ParseStatus::Error(ParseError::PathTraversal)
        );
    }

    #[test]
    fn incremental_feeding() {
        let mut p = RequestParser::new();
        assert_eq!(p.feed(b"GE"), ParseStatus::Incomplete);
        assert_eq!(p.feed(b"T /x.html HT"), ParseStatus::Incomplete);
        assert_eq!(p.feed(b"TP/1.0\r\n"), ParseStatus::Incomplete);
        match p.feed(b"\r\n") {
            ParseStatus::Done(r) => assert_eq!(r.path, "/x.html"),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let mut p = RequestParser::new();
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        match p.feed(two) {
            ParseStatus::Done(r) => assert_eq!(r.path, "/a"),
            other => panic!("{other:?}"),
        }
        match p.feed(b"") {
            ParseStatus::Done(r) => assert_eq!(r.path, "/b"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_lf_line_endings_accepted() {
        let r = done("GET /x HTTP/1.0\nHost: y\n\n");
        assert_eq!(r.path, "/x");
        assert_eq!(r.host.as_deref(), Some("y"));
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(
            parse("FROB /x HTTP/1.0\r\n\r\n"),
            ParseStatus::Error(ParseError::BadMethod)
        );
        assert_eq!(
            parse("GET /x HTTP/3.9\r\n\r\n"),
            ParseStatus::Error(ParseError::BadVersion)
        );
        assert_eq!(
            parse("GET\r\n\r\n"),
            ParseStatus::Error(ParseError::BadRequestLine)
        );
        assert_eq!(
            parse("GET /x HTTP/1.0\r\nNoColonHere\r\n\r\n"),
            ParseStatus::Error(ParseError::BadHeader)
        );
    }

    #[test]
    fn oversized_header_rejected() {
        let mut p = RequestParser::new();
        let big = vec![b'a'; MAX_HEADER_BYTES + 1];
        assert_eq!(p.feed(&big), ParseStatus::Error(ParseError::TooLarge));
    }

    #[test]
    fn connection_header_is_a_token_list() {
        // 1.0: keep-alive among other tokens still keeps alive.
        assert!(done("GET / HTTP/1.0\r\nConnection: keep-alive, upgrade\r\n\r\n").keep_alive());
        assert!(done("GET / HTTP/1.0\r\nConnection: upgrade,keep-alive\r\n\r\n").keep_alive());
        // 1.1: close among other tokens still closes.
        assert!(!done("GET / HTTP/1.1\r\nConnection: close, te\r\n\r\n").keep_alive());
        assert!(!done("GET / HTTP/1.1\r\nConnection: te , close\r\n\r\n").keep_alive());
        // A token that merely *contains* the word is not a match.
        assert!(done("GET / HTTP/1.1\r\nConnection: not-close\r\n\r\n").keep_alive());
        assert!(!done("GET / HTTP/1.0\r\nConnection: keep-alive-ish\r\n\r\n").keep_alive());
        // Contradictory tokens: close wins on both versions.
        assert!(!done("GET / HTTP/1.0\r\nConnection: keep-alive, close\r\n\r\n").keep_alive());
    }

    #[test]
    fn pipelined_burst_larger_than_header_cap_is_accepted() {
        // Many small requests buffered together exceed MAX_HEADER_BYTES
        // in aggregate; each individual header is tiny, so every one
        // must parse — the cap bounds a single request's header, not
        // the buffer.
        let one = "GET /tiny HTTP/1.1\r\nHost: h\r\n\r\n";
        let n = MAX_HEADER_BYTES / one.len() + 2;
        let burst: String = one.repeat(n);
        assert!(burst.len() > MAX_HEADER_BYTES);
        let mut p = RequestParser::new();
        match p.feed(burst.as_bytes()) {
            ParseStatus::Done(r) => assert_eq!(r.path, "/tiny"),
            other => panic!("first of the burst must parse: {other:?}"),
        }
        for i in 1..n {
            match p.feed(b"") {
                ParseStatus::Done(r) => assert_eq!(r.path, "/tiny", "request {i}"),
                other => panic!("request {i}: {other:?}"),
            }
        }
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn single_oversized_request_still_rejected_even_when_complete() {
        // One request whose own header exceeds the cap is refused even
        // though a terminator eventually arrives.
        let mut p = RequestParser::new();
        let mut req = String::from("GET /x HTTP/1.1\r\nX-Filler: ");
        req.push_str(&"a".repeat(MAX_HEADER_BYTES));
        req.push_str("\r\n\r\n");
        assert_eq!(
            p.feed(req.as_bytes()),
            ParseStatus::Error(ParseError::TooLarge)
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // Smoke test; the proptest suite drives this much harder.
        for chunk in [&b"\x00\xff\xfe GET"[..], b"\r\n\r\n", b"%%%%%"] {
            let mut p = RequestParser::new();
            let _ = p.feed(chunk);
        }
    }

    #[test]
    fn trailing_slash_preserved() {
        assert_eq!(done("GET /dir/ HTTP/1.0\r\n\r\n").path, "/dir/");
        assert_eq!(done("GET / HTTP/1.0\r\n\r\n").path, "/");
    }
}
