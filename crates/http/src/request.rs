//! Incremental HTTP request parsing.
//!
//! The parser consumes bytes as they arrive from a socket (requests can be
//! split across arbitrarily many reads — slow WAN clients in the paper's
//! §6.4 do exactly this) and never panics on malformed input: every
//! failure is a typed [`ParseError`] that the server maps to a 4xx
//! response.

use bytes::BytesMut;
use std::fmt;

/// Maximum accepted request-header size; larger requests are rejected
/// (defense against unbounded buffering).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// HTTP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// GET — the only method that returns content.
    Get,
    /// HEAD — headers only.
    Head,
    /// POST — accepted and routed to CGI handling.
    Post,
}

impl Method {
    fn parse(s: &str) -> Option<Method> {
        match s {
            "GET" => Some(Method::Get),
            "HEAD" => Some(Method::Head),
            "POST" => Some(Method::Post),
            _ => None,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
        })
    }
}

/// HTTP protocol version of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// HTTP/0.9 (bare `GET /path` line).
    Http09,
    /// HTTP/1.0.
    Http10,
    /// HTTP/1.1 (persistent by default).
    Http11,
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Version::Http09 => "HTTP/0.9",
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        })
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Decoded path (no query string), always starting with `/`.
    pub path: String,
    /// Raw query string (after `?`), if any.
    pub query: Option<String>,
    /// Protocol version.
    pub version: Version,
    /// Value of the `Connection` header, lower-cased, if present.
    pub connection: Option<String>,
    /// Value of the `Host` header, if present.
    pub host: Option<String>,
    /// Value of the `If-Modified-Since` header, if present (verbatim).
    pub if_modified_since: Option<String>,
    /// Parsed single-range `Range` header. `None` both when the header
    /// is absent and when it is malformed or multi-range — RFC 9110
    /// §14.2 says an unintelligible `Range` is simply ignored (full
    /// 200), never an error.
    pub range: Option<RangeSpec>,
    /// Parsed `If-Range` validator (ETag or exact HTTP-date), if
    /// present. Gates `range`: on mismatch the range is ignored.
    pub if_range: Option<IfRange>,
    /// Value of the `If-None-Match` header, if present (verbatim) —
    /// takes precedence over `If-Modified-Since` (RFC 9110 §13.1.2).
    pub if_none_match: Option<String>,
    /// Whether `Accept-Encoding` admits gzip (a `gzip` or `*` token
    /// with nonzero q). False when the header is absent.
    pub accept_gzip: bool,
}

/// One parsed `Range: bytes=…` spec (single-range only), before it is
/// resolved against a representation length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeSpec {
    /// `bytes=a-b`: the inclusive window `[a, b]` (parse guarantees
    /// `a <= b`).
    FromTo(u64, u64),
    /// `bytes=a-`: from `a` through the end.
    From(u64),
    /// `bytes=-n`: the final `n` bytes.
    Suffix(u64),
}

impl RangeSpec {
    /// Parses a `Range` header value. Returns `None` for anything other
    /// than a well-formed **single** `bytes` range — multi-range sets,
    /// other units, inverted or unparseable bounds — which callers must
    /// treat as "no Range header" (RFC 9110 §14.2).
    pub fn parse(value: &str) -> Option<RangeSpec> {
        let rest = value.trim();
        let rest = rest
            .strip_prefix("bytes=")
            .or_else(|| rest.strip_prefix("Bytes="))?;
        if rest.contains(',') {
            return None; // multi-range: serve the full representation
        }
        let rest = rest.trim();
        let (a, b) = rest.split_once('-')?;
        match (a.is_empty(), b.is_empty()) {
            (true, true) => None,
            (true, false) => b.parse().ok().map(RangeSpec::Suffix),
            (false, true) => a.parse().ok().map(RangeSpec::From),
            (false, false) => match (a.parse().ok()?, b.parse().ok()?) {
                (a, b) if a <= b => Some(RangeSpec::FromTo(a, b)),
                _ => None, // inverted bounds: malformed, ignore
            },
        }
    }

    /// Resolves the spec against a representation of `total` bytes into
    /// an inclusive `(start, end)` window, or `None` when the range is
    /// unsatisfiable (→ `416` with `Content-Range: bytes */total`).
    pub fn resolve(&self, total: u64) -> Option<(u64, u64)> {
        match *self {
            RangeSpec::FromTo(a, b) if a < total => Some((a, b.min(total - 1))),
            RangeSpec::From(a) if a < total => Some((a, total - 1)),
            RangeSpec::Suffix(n) if n > 0 && total > 0 => Some((total - n.min(total), total - 1)),
            _ => None,
        }
    }
}

/// A parsed `If-Range` validator: the range applies only while the
/// selected representation still matches it (RFC 9110 §13.1.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IfRange {
    /// An entity tag (verbatim, including quotes / `W/` prefix).
    Tag(String),
    /// An HTTP-date, as unix seconds; must equal `Last-Modified`
    /// exactly (dates are only weak validators otherwise).
    Date(i64),
}

impl IfRange {
    fn parse(value: &str) -> Option<IfRange> {
        let v = value.trim();
        if v.starts_with('"') || v.starts_with("W/") {
            Some(IfRange::Tag(v.to_string()))
        } else {
            // An unparseable date can never match a validator, but it
            // must still *gate* the range — report it as a date that
            // matches nothing rather than dropping the header.
            Some(IfRange::Date(crate::date::parse_imf(v).unwrap_or(i64::MIN)))
        }
    }

    /// Whether the validator matches the selected representation
    /// (strong comparison only — `W/` tags and inexact dates never
    /// match, so the range is ignored and the full body served).
    pub fn matches(&self, etag: &str, last_modified_unix: Option<i64>) -> bool {
        match self {
            IfRange::Tag(t) => t == etag,
            IfRange::Date(d) => last_modified_unix == Some(*d),
        }
    }
}

/// Whether an `If-None-Match` header value matches `etag` (weak
/// comparison: a `W/` prefix on either side is ignored, per RFC 9110
/// §8.8.3.2 — correct for cache validation). `*` matches any
/// representation.
pub fn etag_matches(header_value: &str, etag: &str) -> bool {
    header_value.split(',').any(|t| {
        let t = t.trim();
        t == "*" || t.strip_prefix("W/").unwrap_or(t) == etag.strip_prefix("W/").unwrap_or(etag)
    })
}

/// Whether an `Accept-Encoding` value admits gzip: a `gzip` (or `*`)
/// token whose qvalue is not zero.
fn accepts_gzip(value: &str) -> bool {
    value.split(',').any(|part| {
        let mut it = part.split(';');
        let token = it.next().unwrap_or("").trim();
        if !(token.eq_ignore_ascii_case("gzip") || token == "*") {
            return false;
        }
        !it.any(|p| {
            p.trim()
                .strip_prefix("q=")
                .and_then(|v| v.trim().parse::<f32>().ok())
                .is_some_and(|q| q == 0.0)
        })
    })
}

impl Request {
    /// Whether the connection should persist after this request
    /// (HTTP/1.1 default-on, HTTP/1.0 with `keep-alive`).
    ///
    /// `Connection` is a comma-separated **token list** (RFC 9110
    /// §7.6.1), so `Connection: keep-alive, upgrade` keeps a 1.0
    /// connection alive and `Connection: close, te` closes a 1.1 one —
    /// whole-value string comparison got both of those wrong.
    pub fn keep_alive(&self) -> bool {
        let has_token = |tok: &str| {
            self.connection
                .as_deref()
                .is_some_and(|v| v.split(',').any(|t| t.trim() == tok))
        };
        match self.version {
            Version::Http09 => false,
            Version::Http10 => has_token("keep-alive") && !has_token("close"),
            Version::Http11 => !has_token("close"),
        }
    }

    /// Number of pathname components ("/a/b/c.html" → 3); the simulator
    /// charges per-component translation cost.
    pub fn path_components(&self) -> u32 {
        self.path.split('/').filter(|s| !s.is_empty()).count() as u32
    }
}

/// Why a request failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Request line was not `METHOD SP PATH [SP VERSION]`.
    BadRequestLine,
    /// Method unknown.
    BadMethod,
    /// Version string unknown.
    BadVersion,
    /// A path escaped the document root via `..`.
    PathTraversal,
    /// Header section exceeded [`MAX_HEADER_BYTES`].
    TooLarge,
    /// A header line had no `:` separator.
    BadHeader,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParseError::BadRequestLine => "malformed request line",
            ParseError::BadMethod => "unknown method",
            ParseError::BadVersion => "unknown HTTP version",
            ParseError::PathTraversal => "path escapes document root",
            ParseError::TooLarge => "request header too large",
            ParseError::BadHeader => "malformed header line",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// Outcome of feeding bytes to the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseStatus {
    /// Need more bytes.
    Incomplete,
    /// A complete request was parsed.
    Done(Request),
    /// The request is malformed.
    Error(ParseError),
}

/// An incremental request parser. Feed it socket bytes with
/// [`RequestParser::feed`]; it buffers until a full header is present.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: BytesMut,
}

impl RequestParser {
    /// Creates an empty parser.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes currently buffered (for tests and flow control).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Appends `bytes` and attempts to parse. On [`ParseStatus::Done`]
    /// the consumed request is removed from the buffer, so pipelined
    /// requests parse one at a time.
    pub fn feed(&mut self, bytes: &[u8]) -> ParseStatus {
        self.buf.extend_from_slice(bytes);
        // The size bound applies to the *current request's* header, not
        // the whole buffer: a burst of pipelined requests buffered
        // together may legitimately exceed MAX_HEADER_BYTES in total
        // while each request stays small. Only search the first
        // MAX_HEADER_BYTES for the terminator — if it isn't there, this
        // request's header really is oversized.
        let search = &self.buf[..self.buf.len().min(MAX_HEADER_BYTES)];
        // An HTTP/0.9 request is a single CRLF- (or LF-) terminated line;
        // 1.0/1.1 headers end with a blank line.
        let Some(line_end) = find(search, b"\n") else {
            return if self.buf.len() > MAX_HEADER_BYTES {
                ParseStatus::Error(ParseError::TooLarge)
            } else {
                ParseStatus::Incomplete
            };
        };
        let first_line = trim_cr(&self.buf[..line_end]);
        let is_09 = !first_line
            .rsplit(|&b| b == b' ')
            .next()
            .is_some_and(|last| last.starts_with(b"HTTP/"));
        let header_end = if is_09 {
            line_end + 1
        } else {
            match find(search, b"\r\n\r\n") {
                Some(i) => i + 4,
                None => match find(search, b"\n\n") {
                    Some(i) => i + 2,
                    None => {
                        // No terminator within the bound: oversized if
                        // more is already buffered, otherwise just
                        // incomplete.
                        return if self.buf.len() > MAX_HEADER_BYTES {
                            ParseStatus::Error(ParseError::TooLarge)
                        } else {
                            ParseStatus::Incomplete
                        };
                    }
                },
            }
        };
        let header = self.buf.split_to(header_end);
        match parse_header(&header) {
            Ok(req) => ParseStatus::Done(req),
            Err(e) => ParseStatus::Error(e),
        }
    }
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

fn trim_cr(line: &[u8]) -> &[u8] {
    match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    }
}

fn parse_header(raw: &[u8]) -> Result<Request, ParseError> {
    let text = String::from_utf8_lossy(raw);
    let mut lines = text.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().ok_or(ParseError::BadRequestLine)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(ParseError::BadRequestLine)?;
    let target = parts.next().ok_or(ParseError::BadRequestLine)?;
    let version = match parts.next() {
        None => Version::Http09,
        Some("HTTP/1.0") => Version::Http10,
        Some("HTTP/1.1") => Version::Http11,
        Some(v) if v.starts_with("HTTP/") => return Err(ParseError::BadVersion),
        Some(_) => return Err(ParseError::BadRequestLine),
    };
    if parts.next().is_some() {
        return Err(ParseError::BadRequestLine);
    }
    let method = Method::parse(method).ok_or(ParseError::BadMethod)?;
    let (path_raw, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q.to_string())),
        None => (target, None),
    };
    let path = normalize_path(path_raw)?;

    let mut connection = None;
    let mut host = None;
    let mut if_modified_since = None;
    let mut range = None;
    let mut if_range = None;
    let mut if_none_match = None;
    let mut accept_gzip = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or(ParseError::BadHeader)?;
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "connection" => connection = Some(value.to_ascii_lowercase()),
            "host" => host = Some(value.to_string()),
            "if-modified-since" => if_modified_since = Some(value.to_string()),
            "range" => range = RangeSpec::parse(value),
            "if-range" => if_range = IfRange::parse(value),
            "if-none-match" => if_none_match = Some(value.to_string()),
            "accept-encoding" => accept_gzip = accepts_gzip(value),
            _ => {}
        }
    }
    Ok(Request {
        method,
        path,
        query,
        version,
        connection,
        host,
        if_modified_since,
        range,
        if_range,
        if_none_match,
        accept_gzip,
    })
}

/// Percent-decodes and normalizes a request path, rejecting traversal
/// outside the document root.
fn normalize_path(raw: &str) -> Result<String, ParseError> {
    let decoded = percent_decode(raw);
    // A NUL can only arrive via %00 and is a filename-smuggling vector
    // on C-string filesystems; rejecting it also guarantees decoded
    // paths never collide with the server's NUL-separated internal
    // variant-cache keys.
    if decoded.contains('\u{0}') {
        return Err(ParseError::PathTraversal);
    }
    let mut out: Vec<&str> = Vec::new();
    for seg in decoded.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                if out.pop().is_none() {
                    return Err(ParseError::PathTraversal);
                }
            }
            s => out.push(s),
        }
    }
    let mut path = String::from("/");
    path.push_str(&out.join("/"));
    // Preserve a trailing slash (directory request) except on the root.
    if decoded.ends_with('/') && path.len() > 1 {
        path.push('/');
    }
    Ok(path)
}

fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            let hex = |b: u8| -> Option<u8> {
                match b {
                    b'0'..=b'9' => Some(b - b'0'),
                    b'a'..=b'f' => Some(b - b'a' + 10),
                    b'A'..=b'F' => Some(b - b'A' + 10),
                    _ => None,
                }
            };
            if let (Some(h), Some(l)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                out.push(h << 4 | l);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> ParseStatus {
        RequestParser::new().feed(s.as_bytes())
    }

    fn done(s: &str) -> Request {
        match parse(s) {
            ParseStatus::Done(r) => r,
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn parses_simple_get() {
        let r = done("GET /index.html HTTP/1.0\r\n\r\n");
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/index.html");
        assert_eq!(r.version, Version::Http10);
        assert!(!r.keep_alive());
        assert_eq!(r.path_components(), 1);
    }

    #[test]
    fn parses_headers_of_interest() {
        let r = done(
            "GET /a/b.html HTTP/1.0\r\nHost: rice.edu\r\nConnection: Keep-Alive\r\nIf-Modified-Since: Sat, 29 Oct 1994 19:43:31 GMT\r\n\r\n",
        );
        assert_eq!(r.host.as_deref(), Some("rice.edu"));
        assert_eq!(r.connection.as_deref(), Some("keep-alive"));
        assert!(r.keep_alive());
        assert!(r.if_modified_since.is_some());
        assert_eq!(r.path_components(), 2);
    }

    #[test]
    fn http11_is_persistent_by_default() {
        assert!(done("GET / HTTP/1.1\r\nHost: x\r\n\r\n").keep_alive());
        assert!(!done("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive());
    }

    #[test]
    fn http09_bare_line() {
        let r = done("GET /foo.html\r\n");
        assert_eq!(r.version, Version::Http09);
        assert!(!r.keep_alive());
    }

    #[test]
    fn query_string_split() {
        let r = done("GET /cgi-bin/search?q=flash+server HTTP/1.0\r\n\r\n");
        assert_eq!(r.path, "/cgi-bin/search");
        assert_eq!(r.query.as_deref(), Some("q=flash+server"));
    }

    #[test]
    fn percent_decoding() {
        let r = done("GET /my%20file.html HTTP/1.0\r\n\r\n");
        assert_eq!(r.path, "/my file.html");
    }

    #[test]
    fn dot_segments_collapse() {
        let r = done("GET /a/./b/../c.html HTTP/1.0\r\n\r\n");
        assert_eq!(r.path, "/a/c.html");
    }

    #[test]
    fn traversal_is_rejected() {
        assert_eq!(
            parse("GET /../etc/passwd HTTP/1.0\r\n\r\n"),
            ParseStatus::Error(ParseError::PathTraversal)
        );
        assert_eq!(
            parse("GET /a/../../x HTTP/1.0\r\n\r\n"),
            ParseStatus::Error(ParseError::PathTraversal)
        );
    }

    #[test]
    fn incremental_feeding() {
        let mut p = RequestParser::new();
        assert_eq!(p.feed(b"GE"), ParseStatus::Incomplete);
        assert_eq!(p.feed(b"T /x.html HT"), ParseStatus::Incomplete);
        assert_eq!(p.feed(b"TP/1.0\r\n"), ParseStatus::Incomplete);
        match p.feed(b"\r\n") {
            ParseStatus::Done(r) => assert_eq!(r.path, "/x.html"),
            other => panic!("{other:?}"),
        }
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let mut p = RequestParser::new();
        let two = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        match p.feed(two) {
            ParseStatus::Done(r) => assert_eq!(r.path, "/a"),
            other => panic!("{other:?}"),
        }
        match p.feed(b"") {
            ParseStatus::Done(r) => assert_eq!(r.path, "/b"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bare_lf_line_endings_accepted() {
        let r = done("GET /x HTTP/1.0\nHost: y\n\n");
        assert_eq!(r.path, "/x");
        assert_eq!(r.host.as_deref(), Some("y"));
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(
            parse("FROB /x HTTP/1.0\r\n\r\n"),
            ParseStatus::Error(ParseError::BadMethod)
        );
        assert_eq!(
            parse("GET /x HTTP/3.9\r\n\r\n"),
            ParseStatus::Error(ParseError::BadVersion)
        );
        assert_eq!(
            parse("GET\r\n\r\n"),
            ParseStatus::Error(ParseError::BadRequestLine)
        );
        assert_eq!(
            parse("GET /x HTTP/1.0\r\nNoColonHere\r\n\r\n"),
            ParseStatus::Error(ParseError::BadHeader)
        );
    }

    #[test]
    fn oversized_header_rejected() {
        let mut p = RequestParser::new();
        let big = vec![b'a'; MAX_HEADER_BYTES + 1];
        assert_eq!(p.feed(&big), ParseStatus::Error(ParseError::TooLarge));
    }

    #[test]
    fn connection_header_is_a_token_list() {
        // 1.0: keep-alive among other tokens still keeps alive.
        assert!(done("GET / HTTP/1.0\r\nConnection: keep-alive, upgrade\r\n\r\n").keep_alive());
        assert!(done("GET / HTTP/1.0\r\nConnection: upgrade,keep-alive\r\n\r\n").keep_alive());
        // 1.1: close among other tokens still closes.
        assert!(!done("GET / HTTP/1.1\r\nConnection: close, te\r\n\r\n").keep_alive());
        assert!(!done("GET / HTTP/1.1\r\nConnection: te , close\r\n\r\n").keep_alive());
        // A token that merely *contains* the word is not a match.
        assert!(done("GET / HTTP/1.1\r\nConnection: not-close\r\n\r\n").keep_alive());
        assert!(!done("GET / HTTP/1.0\r\nConnection: keep-alive-ish\r\n\r\n").keep_alive());
        // Contradictory tokens: close wins on both versions.
        assert!(!done("GET / HTTP/1.0\r\nConnection: keep-alive, close\r\n\r\n").keep_alive());
    }

    #[test]
    fn pipelined_burst_larger_than_header_cap_is_accepted() {
        // Many small requests buffered together exceed MAX_HEADER_BYTES
        // in aggregate; each individual header is tiny, so every one
        // must parse — the cap bounds a single request's header, not
        // the buffer.
        let one = "GET /tiny HTTP/1.1\r\nHost: h\r\n\r\n";
        let n = MAX_HEADER_BYTES / one.len() + 2;
        let burst: String = one.repeat(n);
        assert!(burst.len() > MAX_HEADER_BYTES);
        let mut p = RequestParser::new();
        match p.feed(burst.as_bytes()) {
            ParseStatus::Done(r) => assert_eq!(r.path, "/tiny"),
            other => panic!("first of the burst must parse: {other:?}"),
        }
        for i in 1..n {
            match p.feed(b"") {
                ParseStatus::Done(r) => assert_eq!(r.path, "/tiny", "request {i}"),
                other => panic!("request {i}: {other:?}"),
            }
        }
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn single_oversized_request_still_rejected_even_when_complete() {
        // One request whose own header exceeds the cap is refused even
        // though a terminator eventually arrives.
        let mut p = RequestParser::new();
        let mut req = String::from("GET /x HTTP/1.1\r\nX-Filler: ");
        req.push_str(&"a".repeat(MAX_HEADER_BYTES));
        req.push_str("\r\n\r\n");
        assert_eq!(
            p.feed(req.as_bytes()),
            ParseStatus::Error(ParseError::TooLarge)
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic() {
        // Smoke test; the proptest suite drives this much harder.
        for chunk in [&b"\x00\xff\xfe GET"[..], b"\r\n\r\n", b"%%%%%"] {
            let mut p = RequestParser::new();
            let _ = p.feed(chunk);
        }
    }

    #[test]
    fn trailing_slash_preserved() {
        assert_eq!(done("GET /dir/ HTTP/1.0\r\n\r\n").path, "/dir/");
        assert_eq!(done("GET / HTTP/1.0\r\n\r\n").path, "/");
    }

    #[test]
    fn nul_in_path_is_rejected() {
        assert_eq!(
            parse("GET /a%00.html HTTP/1.0\r\n\r\n"),
            ParseStatus::Error(ParseError::PathTraversal)
        );
    }

    #[test]
    fn range_header_parses_single_specs() {
        let r = done("GET /f HTTP/1.1\r\nRange: bytes=10-19\r\n\r\n");
        assert_eq!(r.range, Some(RangeSpec::FromTo(10, 19)));
        let r = done("GET /f HTTP/1.1\r\nRange: bytes=100-\r\n\r\n");
        assert_eq!(r.range, Some(RangeSpec::From(100)));
        let r = done("GET /f HTTP/1.1\r\nRange: bytes=-500\r\n\r\n");
        assert_eq!(r.range, Some(RangeSpec::Suffix(500)));
    }

    #[test]
    fn malformed_or_multi_range_is_ignored() {
        for v in [
            "bytes=19-10",   // inverted
            "bytes=a-b",     // not numbers
            "bytes=-",       // empty both sides
            "bytes=0-5,7-9", // multi-range: full body
            "chars=0-5",     // unknown unit
            "0-5",           // missing unit
        ] {
            let r = done(&format!("GET /f HTTP/1.1\r\nRange: {v}\r\n\r\n"));
            assert_eq!(r.range, None, "{v} must be ignored");
        }
    }

    #[test]
    fn range_resolution_clamps_and_rejects() {
        assert_eq!(RangeSpec::FromTo(0, 9).resolve(100), Some((0, 9)));
        assert_eq!(RangeSpec::FromTo(90, 200).resolve(100), Some((90, 99)));
        assert_eq!(RangeSpec::FromTo(100, 200).resolve(100), None);
        assert_eq!(RangeSpec::From(40).resolve(100), Some((40, 99)));
        assert_eq!(RangeSpec::From(100).resolve(100), None);
        assert_eq!(RangeSpec::Suffix(10).resolve(100), Some((90, 99)));
        assert_eq!(RangeSpec::Suffix(500).resolve(100), Some((0, 99)));
        assert_eq!(RangeSpec::Suffix(0).resolve(100), None);
        // Empty representation: nothing is satisfiable.
        assert_eq!(RangeSpec::From(0).resolve(0), None);
        assert_eq!(RangeSpec::Suffix(5).resolve(0), None);
    }

    #[test]
    fn if_range_gates_by_strong_validator() {
        let r = done("GET /f HTTP/1.1\r\nIf-Range: \"abc-12\"\r\n\r\n");
        let ir = r.if_range.unwrap();
        assert!(ir.matches("\"abc-12\"", None));
        assert!(!ir.matches("\"abc-13\"", None));
        let r = done("GET /f HTTP/1.1\r\nIf-Range: Sun, 06 Nov 1994 08:49:37 GMT\r\n\r\n");
        let ir = r.if_range.unwrap();
        assert!(ir.matches("\"x\"", Some(784_111_777)));
        assert!(
            !ir.matches("\"x\"", Some(784_111_778)),
            "dates must match exactly"
        );
        assert!(!ir.matches("\"x\"", None));
        // A weak tag never strong-matches.
        let r = done("GET /f HTTP/1.1\r\nIf-Range: W/\"abc-12\"\r\n\r\n");
        assert!(!r.if_range.unwrap().matches("\"abc-12\"", None));
    }

    #[test]
    fn if_none_match_uses_weak_comparison_and_star() {
        assert!(etag_matches("\"a-1\"", "\"a-1\""));
        assert!(etag_matches("W/\"a-1\"", "\"a-1\""));
        assert!(etag_matches("\"x\", \"a-1\"", "\"a-1\""));
        assert!(etag_matches("*", "\"anything\""));
        assert!(!etag_matches("\"a-2\"", "\"a-1\""));
        let r = done("GET /f HTTP/1.1\r\nIf-None-Match: \"a-1\"\r\n\r\n");
        assert_eq!(r.if_none_match.as_deref(), Some("\"a-1\""));
    }

    #[test]
    fn accept_encoding_gzip_detection() {
        assert!(done("GET / HTTP/1.1\r\nAccept-Encoding: gzip\r\n\r\n").accept_gzip);
        assert!(done("GET / HTTP/1.1\r\nAccept-Encoding: br, gzip;q=0.5\r\n\r\n").accept_gzip);
        assert!(done("GET / HTTP/1.1\r\nAccept-Encoding: *\r\n\r\n").accept_gzip);
        assert!(!done("GET / HTTP/1.1\r\nAccept-Encoding: gzip;q=0\r\n\r\n").accept_gzip);
        assert!(!done("GET / HTTP/1.1\r\nAccept-Encoding: br\r\n\r\n").accept_gzip);
        assert!(!done("GET / HTTP/1.1\r\n\r\n").accept_gzip);
    }
}
