//! IMF-fixdate (RFC 9110 §5.6.7) formatting and parsing.
//!
//! HTTP dates appear on every response (`Date`), on every 200 with a
//! known file time (`Last-Modified`), and in conditional requests
//! (`If-Modified-Since`). The format is fixed-width — always exactly
//! [`IMF_FIXDATE_LEN`] bytes, e.g. `Sun, 06 Nov 1994 08:49:37 GMT` —
//! which keeps rendered header lengths deterministic (the simulator and
//! the §5.5 alignment padding both rely on that).
//!
//! Formatting walks the proleptic Gregorian calendar with the
//! days-from-civil algorithm (no `libc`, no chrono); [`now_imf`] caches
//! the rendered string **per second per thread** — each server shard is
//! a thread, so the hot path re-formats at most once a second per shard
//! and otherwise costs one integer compare.

use std::cell::RefCell;
use std::time::{SystemTime, UNIX_EPOCH};

/// Length of an IMF-fixdate string in bytes, always.
pub const IMF_FIXDATE_LEN: usize = 29;

const DAY_NAMES: [&str; 7] = ["Sun", "Mon", "Tue", "Wed", "Thu", "Fri", "Sat"];
const MONTH_NAMES: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Civil date from days since 1970-01-01 (Howard Hinnant's
/// `civil_from_days`, valid across the proleptic Gregorian calendar).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11], March-based
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Days since 1970-01-01 for a civil date (the inverse of
/// [`civil_from_days`]).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = if m > 2 { m - 3 } else { m + 9 } as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Formats `unix_secs` as an IMF-fixdate, e.g.
/// `Sun, 06 Nov 1994 08:49:37 GMT`. Always [`IMF_FIXDATE_LEN`] bytes.
pub fn format_imf(unix_secs: i64) -> String {
    let days = unix_secs.div_euclid(86_400);
    let secs_of_day = unix_secs.rem_euclid(86_400);
    let (year, month, day) = civil_from_days(days);
    // 1970-01-01 (day 0) was a Thursday, index 4 in the Sunday-based table.
    let weekday = (days + 4).rem_euclid(7) as usize;
    let (h, rest) = (secs_of_day / 3600, secs_of_day % 3600);
    let (min, s) = (rest / 60, rest % 60);
    let out = format!(
        "{}, {:02} {} {:04} {:02}:{:02}:{:02} GMT",
        DAY_NAMES[weekday],
        day,
        MONTH_NAMES[(month - 1) as usize],
        year,
        h,
        min,
        s
    );
    debug_assert_eq!(out.len(), IMF_FIXDATE_LEN);
    out
}

/// Parses an IMF-fixdate back to unix seconds. Returns `None` for
/// anything malformed (including the obsolete RFC 850 and asctime
/// forms) — a conditional request with an unparseable date is simply
/// treated as unconditional, which is the safe direction.
pub fn parse_imf(s: &str) -> Option<i64> {
    let s = s.trim();
    if s.len() != IMF_FIXDATE_LEN || !s.ends_with(" GMT") {
        return None;
    }
    let b = s.as_bytes();
    if &b[3..5] != b", " || b[7] != b' ' || b[11] != b' ' || b[16] != b' ' {
        return None;
    }
    if b[19] != b':' || b[22] != b':' {
        return None;
    }
    let num = |r: std::ops::Range<usize>| -> Option<i64> {
        let t = &s[r];
        if !t.bytes().all(|c| c.is_ascii_digit()) {
            return None;
        }
        t.parse().ok()
    };
    let day = num(5..7)?;
    let month = MONTH_NAMES.iter().position(|m| *m == &s[8..11])? as u32 + 1;
    let year = num(12..16)?;
    let (h, min, sec) = (num(17..19)?, num(20..22)?, num(23..25)?);
    if !(1..=31).contains(&day) || h > 23 || min > 59 || sec > 60 {
        return None;
    }
    let days = days_from_civil(year, month, day as u32);
    let secs = days * 86_400 + h * 3600 + min * 60 + sec;
    // Round-trip check rejects impossible dates like Feb 30: the
    // forward formatting of the computed instant must name the same
    // civil day the caller wrote.
    let (y2, m2, d2) = civil_from_days(days);
    if y2 != year || m2 != month || d2 != day as u32 {
        return None;
    }
    // The weekday name must also agree (a lie here usually means a
    // corrupted header; being strict costs only a full re-send).
    let weekday = (days + 4).rem_euclid(7) as usize;
    if DAY_NAMES[weekday] != &s[0..3] {
        return None;
    }
    Some(secs)
}

thread_local! {
    /// (second, rendered date) — see [`now_imf`].
    static NOW_CACHE: RefCell<(i64, String)> = const { RefCell::new((i64::MIN, String::new())) };
}

/// Current unix time in whole seconds.
pub fn unix_now() -> i64 {
    match SystemTime::now().duration_since(UNIX_EPOCH) {
        Ok(d) => d.as_secs() as i64,
        Err(e) => -(e.duration().as_secs() as i64),
    }
}

/// Runs `f` with the current time as an IMF-fixdate. The rendered
/// string is cached per second **per thread** (one shard = one thread),
/// so a shard serving thousands of responses a second formats the date
/// once and hands out the cached bytes for the rest of that second.
pub fn with_now_imf<R>(f: impl FnOnce(&str) -> R) -> R {
    let now = unix_now();
    NOW_CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if c.0 != now {
            c.1 = format_imf(now);
            c.0 = now;
        }
        f(&c.1)
    })
}

/// Current time as an owned IMF-fixdate string (cached as in
/// [`with_now_imf`]).
pub fn now_imf() -> String {
    with_now_imf(|s| s.to_owned())
}

thread_local! {
    /// (second, rendered date as shared bytes) — see [`now_imf_bytes`].
    static NOW_BYTES: RefCell<(i64, bytes::Bytes)> =
        RefCell::new((i64::MIN, bytes::Bytes::new()));
}

/// Current time as IMF-fixdate [`bytes::Bytes`], cached per second per
/// thread; within one second every call returns a clone of the same
/// allocation (an `Arc` bump, no formatting, no copy) — what a server
/// splices into pre-rendered headers to keep their `Date` current.
pub fn now_imf_bytes() -> bytes::Bytes {
    let now = unix_now();
    NOW_BYTES.with(|c| {
        let mut c = c.borrow_mut();
        if c.0 != now {
            c.1 = bytes::Bytes::from(format_imf(now).into_bytes());
            c.0 = now;
        }
        c.1.clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_known_instants() {
        // RFC 9110's own example.
        assert_eq!(format_imf(784_111_777), "Sun, 06 Nov 1994 08:49:37 GMT");
        assert_eq!(format_imf(0), "Thu, 01 Jan 1970 00:00:00 GMT");
        // The seed's old hardcoded date, for the record.
        assert_eq!(format_imf(929_040_392), "Thu, 10 Jun 1999 18:46:32 GMT");
    }

    #[test]
    fn format_is_fixed_width() {
        for t in [0i64, 1, 59, 784_111_777, 4_102_444_799, 253_402_300_799] {
            assert_eq!(format_imf(t).len(), IMF_FIXDATE_LEN, "t={t}");
        }
    }

    #[test]
    fn round_trips_through_parse() {
        for t in [0i64, 784_111_777, 929_040_392, 2_000_000_000] {
            assert_eq!(parse_imf(&format_imf(t)), Some(t), "t={t}");
        }
    }

    #[test]
    fn rejects_malformed_dates() {
        for bad in [
            "",
            "yesterday",
            "Sun, 06 Nov 1994 08:49:37 PST",  // not GMT
            "Sunday, 06-Nov-94 08:49:37 GMT", // RFC 850 form
            "Sun Nov  6 08:49:37 1994",       // asctime form
            "Mon, 06 Nov 1994 08:49:37 GMT",  // wrong weekday
            "Sun, 31 Feb 1994 08:49:37 GMT",  // impossible day
            "Sun, 06 Nov 1994 25:49:37 GMT",  // bad hour
            "Sun, 0x Nov 1994 08:49:37 GMT",  // non-digit
        ] {
            assert_eq!(parse_imf(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn now_cache_matches_direct_formatting() {
        // Within one call the cache and a direct render agree (modulo a
        // second boundary, absorbed by retrying).
        for _ in 0..3 {
            let direct = format_imf(unix_now());
            let cached = now_imf();
            if direct == cached {
                assert_eq!(parse_imf(&cached), parse_imf(&direct));
                return;
            }
        }
        panic!("cache and direct render disagreed across three attempts");
    }
}
