//! `Transfer-Encoding: chunked` framing (RFC 9112 §7.1) for the
//! dynamic-content tier: response bodies whose length is unknown when
//! the header goes out — a CGI worker produces output incrementally —
//! are framed as hex-sized chunks and terminated with a zero-length
//! chunk, so keep-alive survives without a `Content-Length` and a
//! truncated stream (worker crash mid-body) is *detectable* by the
//! client: the terminal chunk never arrives.
//!
//! The encoder side is deliberately split into pieces ([`size_line`],
//! [`CRLF`], [`TERMINATOR`]) so the server can queue a worker's chunk
//! as three segments — size line, the worker's bytes zero-copy, CRLF —
//! on its gathered-`writev` path instead of reassembling a copy.
//! [`encode`] glues them for tests and one-shot callers.
//!
//! The decoder ([`ChunkedDecoder`]) is incremental byte-at-a-time —
//! feed it arbitrary splits of the wire stream and it reassembles the
//! body exactly; tests and the loopback batteries use it to prove the
//! framing round-trips on every byte boundary. Chunk extensions and
//! trailer fields are not produced by this server and are rejected on
//! decode.

use std::fmt;

/// The line terminator between framing elements.
pub const CRLF: &[u8] = b"\r\n";

/// The terminal frame: a zero-length chunk plus the empty trailer
/// section. Queuing this ends a chunked body cleanly.
pub const TERMINATOR: &[u8] = b"0\r\n\r\n";

/// The size line introducing one chunk of `len` bytes: lowercase hex
/// followed by CRLF. The chunk data and its trailing [`CRLF`] follow
/// as separate segments.
pub fn size_line(len: usize) -> Vec<u8> {
    format!("{len:x}\r\n").into_bytes()
}

/// Encodes `chunks` as one contiguous chunked body, terminal frame
/// included. Zero-length chunks are skipped — a zero size line *is*
/// the terminator and must never appear mid-stream.
pub fn encode(chunks: &[&[u8]]) -> Vec<u8> {
    let total: usize = chunks.iter().map(|c| c.len() + 16).sum();
    let mut out = Vec::with_capacity(total + TERMINATOR.len());
    for chunk in chunks {
        if chunk.is_empty() {
            continue;
        }
        out.extend_from_slice(&size_line(chunk.len()));
        out.extend_from_slice(chunk);
        out.extend_from_slice(CRLF);
    }
    out.extend_from_slice(TERMINATOR);
    out
}

/// A malformed chunked stream (bad size line, missing CRLF, bytes
/// after the terminal frame).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkedError(&'static str);

impl fmt::Display for ChunkedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed chunked body: {}", self.0)
    }
}

impl std::error::Error for ChunkedError {}

/// Where the decoder is within the framing grammar.
enum DecodeState {
    /// Accumulating the hex size (at least one digit seen iff
    /// `seen_digit`).
    Size {
        value: u64,
        seen_digit: bool,
    },
    /// Saw the CR ending a size line; LF must follow.
    SizeLf {
        value: u64,
    },
    /// Consuming `0` or more remaining data bytes of the current chunk.
    Data {
        remaining: u64,
    },
    /// Chunk data consumed; CRLF must follow.
    DataCr,
    DataLf,
    /// Terminal chunk's size line consumed; the empty trailer section
    /// (a bare CRLF) must follow.
    TrailerCr,
    TrailerLf,
    /// Terminal frame complete; any further byte is an error.
    Done,
}

/// Incremental chunked-body decoder: feed wire bytes in arbitrary
/// splits, read the reassembled body out of [`ChunkedDecoder::body`]
/// once [`ChunkedDecoder::is_done`].
pub struct ChunkedDecoder {
    state: DecodeState,
    body: Vec<u8>,
}

impl Default for ChunkedDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl ChunkedDecoder {
    pub fn new() -> ChunkedDecoder {
        ChunkedDecoder {
            state: DecodeState::Size {
                value: 0,
                seen_digit: false,
            },
            body: Vec::new(),
        }
    }

    /// Whether the terminal frame has been consumed.
    pub fn is_done(&self) -> bool {
        matches!(self.state, DecodeState::Done)
    }

    /// The body bytes decoded so far (complete iff
    /// [`ChunkedDecoder::is_done`]).
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Consumes one slice of the wire stream. An error is terminal —
    /// the decoder's state is unspecified afterwards.
    pub fn feed(&mut self, mut bytes: &[u8]) -> Result<(), ChunkedError> {
        while !bytes.is_empty() {
            match self.state {
                DecodeState::Size {
                    mut value,
                    mut seen_digit,
                } => {
                    let b = bytes[0];
                    bytes = &bytes[1..];
                    match b {
                        b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' => {
                            let digit = (b as char).to_digit(16).unwrap() as u64;
                            value = value
                                .checked_mul(16)
                                .and_then(|v| v.checked_add(digit))
                                .ok_or(ChunkedError("chunk size overflows"))?;
                            seen_digit = true;
                            self.state = DecodeState::Size { value, seen_digit };
                        }
                        b'\r' if seen_digit => self.state = DecodeState::SizeLf { value },
                        _ => return Err(ChunkedError("bad byte in chunk size line")),
                    }
                }
                DecodeState::SizeLf { value } => {
                    if bytes[0] != b'\n' {
                        return Err(ChunkedError("size CR without LF"));
                    }
                    bytes = &bytes[1..];
                    self.state = if value == 0 {
                        DecodeState::TrailerCr
                    } else {
                        DecodeState::Data { remaining: value }
                    };
                }
                DecodeState::Data { remaining } => {
                    let take = (remaining as usize).min(bytes.len());
                    self.body.extend_from_slice(&bytes[..take]);
                    bytes = &bytes[take..];
                    let left = remaining - take as u64;
                    self.state = if left == 0 {
                        DecodeState::DataCr
                    } else {
                        DecodeState::Data { remaining: left }
                    };
                }
                DecodeState::DataCr => {
                    if bytes[0] != b'\r' {
                        return Err(ChunkedError("chunk data not followed by CR"));
                    }
                    bytes = &bytes[1..];
                    self.state = DecodeState::DataLf;
                }
                DecodeState::DataLf => {
                    if bytes[0] != b'\n' {
                        return Err(ChunkedError("chunk data CR without LF"));
                    }
                    bytes = &bytes[1..];
                    self.state = DecodeState::Size {
                        value: 0,
                        seen_digit: false,
                    };
                }
                DecodeState::TrailerCr => {
                    if bytes[0] != b'\r' {
                        return Err(ChunkedError("trailer fields are not supported"));
                    }
                    bytes = &bytes[1..];
                    self.state = DecodeState::TrailerLf;
                }
                DecodeState::TrailerLf => {
                    if bytes[0] != b'\n' {
                        return Err(ChunkedError("trailer CR without LF"));
                    }
                    bytes = &bytes[1..];
                    self.state = DecodeState::Done;
                }
                DecodeState::Done => return Err(ChunkedError("bytes after the terminal frame")),
            }
        }
        Ok(())
    }

    /// Decodes a complete chunked body in one call.
    pub fn decode_all(wire: &[u8]) -> Result<Vec<u8>, ChunkedError> {
        let mut d = ChunkedDecoder::new();
        d.feed(wire)?;
        if !d.is_done() {
            return Err(ChunkedError("stream ended before the terminal frame"));
        }
        Ok(d.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* (the workspace takes no dev-deps for
    /// property tests — same idiom as the stats registry's).
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn encode_of_known_chunks_matches_rfc_form() {
        let wire = encode(&[b"Wiki", b"pedia in \r\nchunks."]);
        assert_eq!(
            wire,
            b"4\r\nWiki\r\n12\r\npedia in \r\nchunks.\r\n0\r\n\r\n".to_vec()
        );
    }

    #[test]
    fn empty_body_is_just_the_terminator() {
        assert_eq!(encode(&[]), TERMINATOR.to_vec());
        assert_eq!(encode(&[b""]), TERMINATOR.to_vec());
        assert_eq!(ChunkedDecoder::decode_all(TERMINATOR).unwrap(), b"");
    }

    #[test]
    fn size_lines_are_lowercase_hex() {
        assert_eq!(size_line(10), b"a\r\n".to_vec());
        assert_eq!(size_line(255), b"ff\r\n".to_vec());
        assert_eq!(size_line(4096), b"1000\r\n".to_vec());
    }

    /// Property: random chunk sequences round-trip through the
    /// encoder/decoder pair no matter where the wire stream is split —
    /// every byte boundary of every frame, in the style of the
    /// conn-machine partial-write sweeps.
    #[test]
    fn random_chunks_round_trip_across_every_byte_split() {
        let mut rng = Rng(0x5EED_C0DE);
        for round in 0..48 {
            let n_chunks = (rng.next() % 6) as usize + 1;
            let mut chunks: Vec<Vec<u8>> = Vec::new();
            for _ in 0..n_chunks {
                let len = (rng.next() % 300) as usize + 1;
                chunks.push((0..len).map(|_| rng.next() as u8).collect());
            }
            let views: Vec<&[u8]> = chunks.iter().map(|c| c.as_slice()).collect();
            let wire = encode(&views);
            let expect: Vec<u8> = chunks.concat();

            // One-shot decode.
            assert_eq!(
                ChunkedDecoder::decode_all(&wire).unwrap(),
                expect,
                "round {round}"
            );

            // Split at a sweep of byte boundaries, including 1-byte
            // feeds through the densest framing region.
            for split in [1usize, 2, 3, 7, wire.len() / 2, wire.len() - 1] {
                let split = split.clamp(1, wire.len());
                let mut d = ChunkedDecoder::new();
                for piece in wire.chunks(split) {
                    d.feed(piece).unwrap();
                }
                assert!(d.is_done(), "round {round} split {split}");
                assert_eq!(d.body(), expect.as_slice(), "round {round} split {split}");
            }
        }
    }

    #[test]
    fn truncation_is_detectable() {
        let wire = encode(&[b"partial body"]);
        // Drop the terminal frame: the decoder must not report done.
        let cut = &wire[..wire.len() - TERMINATOR.len()];
        let mut d = ChunkedDecoder::new();
        d.feed(cut).unwrap();
        assert!(!d.is_done(), "truncated stream must not look complete");
        assert!(ChunkedDecoder::decode_all(cut).is_err());
    }

    #[test]
    fn malformed_streams_are_rejected() {
        for bad in [
            b"zz\r\nxx\r\n0\r\n\r\n".as_slice(), // non-hex size
            b"\r\n0\r\n\r\n".as_slice(),         // empty size line
            b"2\rab\r\n0\r\n\r\n".as_slice(),    // CR without LF
            b"1\r\na\r\r0\r\n\r\n".as_slice(),   // bad data terminator
            b"0\r\nX: y\r\n\r\n".as_slice(),     // trailer field
        ] {
            assert!(
                ChunkedDecoder::decode_all(bad).is_err(),
                "{:?} must be rejected",
                String::from_utf8_lossy(bad)
            );
        }
        // Bytes after the terminal frame are an error too.
        let mut d = ChunkedDecoder::new();
        d.feed(b"0\r\n\r\n").unwrap();
        assert!(d.is_done());
        assert!(d.feed(b"x").is_err());
    }
}
