//! HTTP/1.0 and HTTP/1.1 machinery for the Flash reproduction.
//!
//! Provides an incremental request parser ([`request`]), a response-header
//! generator with the paper's §5.5 byte-position alignment padding
//! ([`response`]), IMF-fixdate formatting/parsing with a per-second
//! per-thread cache ([`date`] — the `Date`, `Last-Modified` and
//! `If-Modified-Since` machinery), MIME type mapping ([`mime`]), the
//! `Transfer-Encoding: chunked` framing used by the dynamic-content
//! tier ([`chunked`]), and the NCSA Common Log Format ([`clf`]) used
//! for trace replay.
//!
//! The same code serves both the simulator (`flash-core` computes header
//! lengths and alignment from it) and the real-socket server
//! (`flash-net` parses and emits actual bytes with it).

pub mod chunked;
pub mod clf;
pub mod date;
pub mod mime;
pub mod request;
pub mod response;

pub use request::{
    etag_matches, IfRange, Method, ParseError, RangeSpec, Request, RequestParser, Version,
};
pub use response::{etag_value, ContentRange, HeaderExtras, ResponseHeader, Status, ALIGN};
