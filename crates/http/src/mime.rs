//! File-extension → MIME type mapping (the 1999 web's content mix).

/// Returns the MIME type for a path based on its extension.
pub fn content_type(path: &str) -> &'static str {
    let ext = path
        .rsplit('/')
        .next()
        .and_then(|name| name.rsplit_once('.'))
        .map(|(_, e)| e)
        .unwrap_or("");
    match ext.to_ascii_lowercase().as_str() {
        "html" | "htm" => "text/html",
        "txt" => "text/plain",
        "gif" => "image/gif",
        "jpg" | "jpeg" => "image/jpeg",
        "png" => "image/png",
        "ps" => "application/postscript",
        "pdf" => "application/pdf",
        "gz" | "tgz" => "application/gzip",
        "tar" => "application/x-tar",
        "zip" => "application/zip",
        "mp3" => "audio/mpeg",
        "mpg" | "mpeg" => "video/mpeg",
        "css" => "text/css",
        "js" => "application/javascript",
        _ => "application/octet-stream",
    }
}

/// True when the path should be handled as dynamic content (CGI).
pub fn is_cgi(path: &str) -> bool {
    path.starts_with("/cgi-bin/") || path.ends_with(".cgi")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_types() {
        assert_eq!(content_type("/index.html"), "text/html");
        assert_eq!(content_type("/pics/me.JPG"), "image/jpeg");
        assert_eq!(content_type("/paper.ps"), "application/postscript");
        assert_eq!(content_type("/data.tar"), "application/x-tar");
    }

    #[test]
    fn unknown_and_missing_extensions_default() {
        assert_eq!(content_type("/noext"), "application/octet-stream");
        assert_eq!(content_type("/weird.xyz"), "application/octet-stream");
        assert_eq!(content_type("/"), "application/octet-stream");
    }

    #[test]
    fn dots_in_directories_do_not_confuse() {
        assert_eq!(content_type("/v1.2/readme"), "application/octet-stream");
        assert_eq!(content_type("/v1.2/readme.txt"), "text/plain");
    }

    #[test]
    fn cgi_detection() {
        assert!(is_cgi("/cgi-bin/search"));
        assert!(is_cgi("/app/form.cgi"));
        assert!(!is_cgi("/cgi-bin.html"));
        assert!(!is_cgi("/index.html"));
    }
}
