//! Response-header generation with byte-position alignment.
//!
//! §5.5 of the paper: `writev` of a header followed by file data causes
//! misaligned kernel copies of *all* subsequent regions when the header
//! length is not a multiple of the machine word; Flash therefore aligns
//! response headers on 32-byte boundaries (cache-line size) by padding a
//! variable-length field. [`ResponseHeader`] implements exactly that.
//!
//! The `Date` field is the real current time (IMF-fixdate, cached per
//! second per thread by [`crate::date`]); because the format is
//! fixed-width, header lengths stay deterministic for the simulator and
//! the alignment padding. `Last-Modified` rides along when the caller
//! knows the file's mtime, and [`ResponseHeader::not_modified`] renders
//! the bodyless `304` used to answer `If-Modified-Since` hits.

use crate::date;
use std::fmt::Write as _;

/// Alignment target for response headers (bytes). The paper picks 32 to
/// match cache-line-optimized copy loops.
pub const ALIGN: usize = 32;

/// HTTP status codes used by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200 OK.
    Ok,
    /// 206 Partial Content.
    PartialContent,
    /// 304 Not Modified.
    NotModified,
    /// 400 Bad Request.
    BadRequest,
    /// 403 Forbidden.
    Forbidden,
    /// 404 Not Found.
    NotFound,
    /// 416 Range Not Satisfiable.
    RangeNotSatisfiable,
    /// 500 Internal Server Error.
    InternalError,
    /// 501 Not Implemented.
    NotImplemented,
    /// 504 Gateway Timeout (a dynamic-tier worker missed its deadline).
    GatewayTimeout,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::PartialContent => 206,
            Status::NotModified => 304,
            Status::BadRequest => 400,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::RangeNotSatisfiable => 416,
            Status::InternalError => 500,
            Status::NotImplemented => 501,
            Status::GatewayTimeout => 504,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::PartialContent => "Partial Content",
            Status::NotModified => "Not Modified",
            Status::BadRequest => "Bad Request",
            Status::Forbidden => "Forbidden",
            Status::NotFound => "Not Found",
            Status::RangeNotSatisfiable => "Range Not Satisfiable",
            Status::InternalError => "Internal Server Error",
            Status::NotImplemented => "Not Implemented",
            Status::GatewayTimeout => "Gateway Timeout",
        }
    }
}

/// A `Content-Range` field value (RFC 9110 §14.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentRange {
    /// `bytes start-end/total` on a `206`.
    Span {
        /// First byte position (inclusive).
        start: u64,
        /// Last byte position (inclusive).
        end: u64,
        /// Complete representation length.
        total: u64,
    },
    /// `bytes */total` on a `416`.
    Unsatisfiable {
        /// Complete representation length.
        total: u64,
    },
}

/// Optional response fields for the conditional/range/variant surface,
/// emitted between `Connection` and `Content-Type` so the pre-rendered
/// header prefix through the `Date` line stays layout-stable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeaderExtras<'a> {
    /// `ETag: <value>` (the value carries its own quotes).
    pub etag: Option<&'a str>,
    /// `Content-Range` on 206/416 responses.
    pub content_range: Option<ContentRange>,
    /// Emit `Content-Encoding: gzip` (precompressed variant).
    pub gzip: bool,
    /// Emit `Vary: Accept-Encoding` (the resource negotiates variants,
    /// whichever one this response carries).
    pub vary_accept_encoding: bool,
}

/// Renders the strong entity tag for a representation: hex mtime and
/// length (the same pair the cache revalidates by), with a `-gz` marker
/// so the gzip variant's tag can never collide with identity's.
pub fn etag_value(mtime: Option<i64>, len: u64, gzip: bool) -> String {
    let m = mtime.unwrap_or(0);
    if gzip {
        format!("\"{m:x}-{len:x}-gz\"")
    } else {
        format!("\"{m:x}-{len:x}\"")
    }
}

/// How a response describes its payload: a known length
/// (`Content-Length`), chunked framing (`Transfer-Encoding: chunked`),
/// or no payload at all (`304`).
enum BodyMeta<'a> {
    Sized(&'a str, u64),
    Chunked(&'a str),
    None,
}

/// A rendered response header, optionally padded to [`ALIGN`] bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseHeader {
    bytes: Vec<u8>,
    aligned: bool,
}

impl ResponseHeader {
    /// Builds a header for `status` with the given content metadata.
    ///
    /// With `pad_align` the Server field is padded so the total header
    /// length is a multiple of [`ALIGN`] (Flash's §5.5 optimization);
    /// without it the length is whatever it happens to be (how Apache and
    /// Zeus behaved, triggering the misaligned-copy penalty).
    pub fn build(
        status: Status,
        content_type: &str,
        content_length: u64,
        keep_alive: bool,
        pad_align: bool,
    ) -> ResponseHeader {
        Self::render(
            status,
            Some((content_type, content_length)),
            keep_alive,
            pad_align,
            None,
        )
    }

    /// [`ResponseHeader::build`] plus a `Last-Modified` field, for
    /// responses whose file mtime (unix seconds) is known — the
    /// validator `If-Modified-Since` compares against.
    pub fn build_with_last_modified(
        status: Status,
        content_type: &str,
        content_length: u64,
        keep_alive: bool,
        pad_align: bool,
        last_modified_unix: i64,
    ) -> ResponseHeader {
        Self::render(
            status,
            Some((content_type, content_length)),
            keep_alive,
            pad_align,
            Some(last_modified_unix),
        )
    }

    /// The fully general builder: [`ResponseHeader::build`] plus an
    /// optional `Last-Modified` and the [`HeaderExtras`] surface
    /// (ETag, `Content-Range`, content encoding, `Vary`).
    pub fn build_full(
        status: Status,
        content: Option<(&str, u64)>,
        keep_alive: bool,
        pad_align: bool,
        last_modified_unix: Option<i64>,
        extras: HeaderExtras<'_>,
    ) -> ResponseHeader {
        Self::render_full(
            status,
            content,
            keep_alive,
            pad_align,
            last_modified_unix,
            extras,
        )
    }

    /// A chunked-transfer header for the dynamic tier: `Transfer-Encoding:
    /// chunked` in place of `Content-Length` (the body length is unknown
    /// when the header goes out — a worker produces it incrementally).
    /// No `Last-Modified`, `ETag`, or range surface: dynamic responses
    /// are generated per request and bypass the conditional plane
    /// entirely. Alignment padding applies as usual — the header still
    /// rides the gathered-`writev` path ahead of chunk frames.
    pub fn build_chunked(
        status: Status,
        content_type: &str,
        keep_alive: bool,
        pad_align: bool,
    ) -> ResponseHeader {
        Self::render_any(
            status,
            BodyMeta::Chunked(content_type),
            keep_alive,
            pad_align,
            None,
            HeaderExtras::default(),
        )
    }

    /// A bodyless `304 Not Modified` header: no `Content-Type` or
    /// `Content-Length` (the response carries no payload by
    /// definition), `Last-Modified` echoed when known so caches can
    /// refresh their validator.
    pub fn not_modified(keep_alive: bool, last_modified_unix: Option<i64>) -> ResponseHeader {
        Self::render(
            Status::NotModified,
            None,
            keep_alive,
            true,
            last_modified_unix,
        )
    }

    /// [`ResponseHeader::not_modified`] plus the representation's
    /// `ETag`, so `If-None-Match` revalidations refresh both
    /// validators.
    pub fn not_modified_full(
        keep_alive: bool,
        last_modified_unix: Option<i64>,
        etag: Option<&str>,
    ) -> ResponseHeader {
        Self::render_full(
            Status::NotModified,
            None,
            keep_alive,
            true,
            last_modified_unix,
            HeaderExtras {
                etag,
                ..HeaderExtras::default()
            },
        )
    }

    fn render(
        status: Status,
        content: Option<(&str, u64)>,
        keep_alive: bool,
        pad_align: bool,
        last_modified_unix: Option<i64>,
    ) -> ResponseHeader {
        Self::render_full(
            status,
            content,
            keep_alive,
            pad_align,
            last_modified_unix,
            HeaderExtras::default(),
        )
    }

    fn render_full(
        status: Status,
        content: Option<(&str, u64)>,
        keep_alive: bool,
        pad_align: bool,
        last_modified_unix: Option<i64>,
        extras: HeaderExtras<'_>,
    ) -> ResponseHeader {
        let body = match content {
            Some((ct, len)) => BodyMeta::Sized(ct, len),
            None => BodyMeta::None,
        };
        Self::render_any(
            status,
            body,
            keep_alive,
            pad_align,
            last_modified_unix,
            extras,
        )
    }

    fn render_any(
        status: Status,
        body: BodyMeta<'_>,
        keep_alive: bool,
        pad_align: bool,
        last_modified_unix: Option<i64>,
        extras: HeaderExtras<'_>,
    ) -> ResponseHeader {
        let mut h = String::with_capacity(224);
        let _ = write!(h, "HTTP/1.1 {} {}\r\n", status.code(), status.reason());
        // Real current time; IMF-fixdate is fixed-width, so header
        // lengths stay deterministic. Rendered at most once a second
        // per thread (see crate::date).
        date::with_now_imf(|now| {
            let _ = write!(h, "Date: {now}\r\n");
        });
        let server_at = h.len() + "Server: ".len();
        h.push_str("Server: Flash/1.0\r\n");
        if keep_alive {
            h.push_str("Connection: keep-alive\r\n");
        } else {
            h.push_str("Connection: close\r\n");
        }
        if let Some(lm) = last_modified_unix {
            let _ = write!(h, "Last-Modified: {}\r\n", date::format_imf(lm));
        }
        if let Some(etag) = extras.etag {
            let _ = write!(h, "ETag: {etag}\r\n");
        }
        match extras.content_range {
            Some(ContentRange::Span { start, end, total }) => {
                let _ = write!(h, "Content-Range: bytes {start}-{end}/{total}\r\n");
            }
            Some(ContentRange::Unsatisfiable { total }) => {
                let _ = write!(h, "Content-Range: bytes */{total}\r\n");
            }
            None => {}
        }
        if extras.gzip {
            h.push_str("Content-Encoding: gzip\r\n");
        }
        if extras.vary_accept_encoding {
            h.push_str("Vary: Accept-Encoding\r\n");
        }
        match body {
            BodyMeta::Sized(content_type, content_length) => {
                let _ = write!(h, "Content-Type: {content_type}\r\n");
                let _ = write!(h, "Content-Length: {content_length}\r\n");
            }
            BodyMeta::Chunked(content_type) => {
                let _ = write!(h, "Content-Type: {content_type}\r\n");
                h.push_str("Transfer-Encoding: chunked\r\n");
            }
            BodyMeta::None => {}
        }
        h.push_str("\r\n");

        let mut bytes = h.into_bytes();
        let mut aligned = bytes.len().is_multiple_of(ALIGN);
        if pad_align && !aligned {
            // Pad the Server product token (a variable-length field the
            // paper calls out as the padding site) with trailing spaces.
            let pad = ALIGN - bytes.len() % ALIGN;
            let insert_at = server_at + "Flash/1.0".len();
            let spaces = vec![b' '; pad];
            bytes.splice(insert_at..insert_at, spaces);
            aligned = true;
        }
        debug_assert!(!pad_align || bytes.len().is_multiple_of(ALIGN));
        ResponseHeader { bytes, aligned }
    }

    /// The header bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Header length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Headers are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the header length is a multiple of [`ALIGN`].
    pub fn aligned(&self) -> bool {
        self.aligned
    }
}

/// Renders a minimal HTML error body for a status (used for 4xx/5xx).
pub fn error_body(status: Status) -> Vec<u8> {
    format!(
        "<html><head><title>{} {}</title></head>\n<body><h1>{}</h1></body></html>\n",
        status.code(),
        status.reason(),
        status.reason()
    )
    .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_headers_are_aligned() {
        for len in [0u64, 1, 512, 4096, 123_456_789] {
            for ka in [false, true] {
                let h = ResponseHeader::build(Status::Ok, "text/html", len, ka, true);
                assert_eq!(h.len() % ALIGN, 0, "len={len} ka={ka}");
                assert!(h.aligned());
            }
        }
    }

    #[test]
    fn unpadded_headers_usually_are_not_aligned() {
        let misaligned = (0..64)
            .filter(|len| {
                !ResponseHeader::build(Status::Ok, "text/plain", *len, false, false).aligned()
            })
            .count();
        assert!(misaligned > 48, "only {misaligned}/64 misaligned");
    }

    #[test]
    fn header_contains_required_fields() {
        let h = ResponseHeader::build(Status::Ok, "image/gif", 42, true, true);
        let s = String::from_utf8(h.as_bytes().to_vec()).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("Content-Length: 42\r\n"));
        assert!(s.contains("Content-Type: image/gif\r\n"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.ends_with("\r\n\r\n"));
    }

    #[test]
    fn padding_preserves_header_syntax() {
        let h = ResponseHeader::build(Status::Ok, "text/html", 7, false, true);
        let s = String::from_utf8(h.as_bytes().to_vec()).unwrap();
        // The padded Server line must still be one well-formed line.
        let server_line = s
            .lines()
            .find(|l| l.starts_with("Server:"))
            .expect("server header present");
        assert!(server_line.trim_end().ends_with("Flash/1.0"));
    }

    #[test]
    fn status_codes_and_reasons() {
        assert_eq!(Status::Ok.code(), 200);
        assert_eq!(Status::NotFound.code(), 404);
        assert_eq!(Status::NotModified.code(), 304);
        assert_eq!(Status::InternalError.reason(), "Internal Server Error");
    }

    #[test]
    fn error_bodies_mention_the_status() {
        let b = String::from_utf8(error_body(Status::NotFound)).unwrap();
        assert!(b.contains("404"));
        assert!(b.contains("Not Found"));
    }

    #[test]
    fn deterministic_for_same_inputs() {
        // The Date field moves once a second; two back-to-back builds
        // land in the same second except across a boundary, absorbed by
        // retrying.
        for _ in 0..3 {
            let a = ResponseHeader::build(Status::Ok, "text/html", 100, true, true);
            let b = ResponseHeader::build(Status::Ok, "text/html", 100, true, true);
            if a == b {
                return;
            }
        }
        panic!("three straight builds disagreed");
    }

    #[test]
    fn date_is_current_imf_fixdate() {
        let before = crate::date::unix_now();
        let h = ResponseHeader::build(Status::Ok, "text/html", 1, true, true);
        let after = crate::date::unix_now();
        let s = String::from_utf8(h.as_bytes().to_vec()).unwrap();
        let date_line = s
            .lines()
            .find_map(|l| l.strip_prefix("Date: "))
            .expect("Date header present");
        let t = crate::date::parse_imf(date_line).expect("Date must be IMF-fixdate");
        assert!(
            (before..=after).contains(&t),
            "Date {t} outside [{before}, {after}]"
        );
    }

    #[test]
    fn last_modified_rides_along_and_stays_aligned() {
        let h = ResponseHeader::build_with_last_modified(
            Status::Ok,
            "text/html",
            42,
            true,
            true,
            784_111_777,
        );
        let s = String::from_utf8(h.as_bytes().to_vec()).unwrap();
        assert!(s.contains("Last-Modified: Sun, 06 Nov 1994 08:49:37 GMT\r\n"));
        assert_eq!(h.len() % ALIGN, 0);
    }

    #[test]
    fn extras_render_between_connection_and_content() {
        let h = ResponseHeader::build_full(
            Status::PartialContent,
            Some(("text/html", 10)),
            true,
            true,
            Some(784_111_777),
            HeaderExtras {
                etag: Some("\"2ebd1ca1-2a\""),
                content_range: Some(ContentRange::Span {
                    start: 5,
                    end: 14,
                    total: 42,
                }),
                gzip: true,
                vary_accept_encoding: true,
            },
        );
        let s = String::from_utf8(h.as_bytes().to_vec()).unwrap();
        assert!(s.starts_with("HTTP/1.1 206 Partial Content\r\n"), "{s}");
        assert!(s.contains("ETag: \"2ebd1ca1-2a\"\r\n"));
        assert!(s.contains("Content-Range: bytes 5-14/42\r\n"));
        assert!(s.contains("Content-Encoding: gzip\r\n"));
        assert!(s.contains("Vary: Accept-Encoding\r\n"));
        assert!(s.contains("Content-Length: 10\r\n"));
        assert_eq!(h.len() % ALIGN, 0, "extras must not break alignment");
        // Date stays the second line regardless of extras — the cache's
        // zero-copy date splice depends on that layout.
        assert!(s.lines().nth(1).unwrap().starts_with("Date: "));
    }

    #[test]
    fn chunked_header_swaps_length_for_transfer_encoding() {
        for ka in [false, true] {
            let h = ResponseHeader::build_chunked(Status::Ok, "text/plain", ka, true);
            let s = String::from_utf8(h.as_bytes().to_vec()).unwrap();
            assert!(s.starts_with("HTTP/1.1 200 OK\r\n"), "{s}");
            assert!(s.contains("Transfer-Encoding: chunked\r\n"));
            assert!(s.contains("Content-Type: text/plain\r\n"));
            assert!(
                !s.contains("Content-Length"),
                "chunked and Content-Length are mutually exclusive"
            );
            assert!(!s.contains("ETag") && !s.contains("Last-Modified"));
            assert_eq!(h.len() % ALIGN, 0, "chunked headers stay aligned");
            assert!(s.lines().nth(1).unwrap().starts_with("Date: "));
        }
    }

    #[test]
    fn gateway_timeout_status_renders() {
        assert_eq!(Status::GatewayTimeout.code(), 504);
        assert_eq!(Status::GatewayTimeout.reason(), "Gateway Timeout");
        let b = String::from_utf8(error_body(Status::GatewayTimeout)).unwrap();
        assert!(b.contains("504"));
    }

    #[test]
    fn unsatisfiable_content_range_renders_star_form() {
        let h = ResponseHeader::build_full(
            Status::RangeNotSatisfiable,
            Some(("text/html", 0)),
            false,
            true,
            None,
            HeaderExtras {
                content_range: Some(ContentRange::Unsatisfiable { total: 42 }),
                ..HeaderExtras::default()
            },
        );
        let s = String::from_utf8(h.as_bytes().to_vec()).unwrap();
        assert!(
            s.starts_with("HTTP/1.1 416 Range Not Satisfiable\r\n"),
            "{s}"
        );
        assert!(s.contains("Content-Range: bytes */42\r\n"));
    }

    #[test]
    fn etag_value_is_strong_and_variant_distinct() {
        let id = etag_value(Some(784_111_777), 42, false);
        let gz = etag_value(Some(784_111_777), 42, true);
        assert!(id.starts_with('"') && id.ends_with('"'));
        assert_ne!(id, gz, "variants must never share a tag");
        assert_eq!(etag_value(None, 7, false), "\"0-7\"");
    }

    #[test]
    fn not_modified_full_carries_etag() {
        let h = ResponseHeader::not_modified_full(true, Some(784_111_777), Some("\"aa-1\""));
        let s = String::from_utf8(h.as_bytes().to_vec()).unwrap();
        assert!(s.starts_with("HTTP/1.1 304 Not Modified\r\n"));
        assert!(s.contains("ETag: \"aa-1\"\r\n"));
        assert!(!s.contains("Content-Length"));
    }

    #[test]
    fn not_modified_is_bodyless_by_construction() {
        let h = ResponseHeader::not_modified(true, Some(784_111_777));
        let s = String::from_utf8(h.as_bytes().to_vec()).unwrap();
        assert!(s.starts_with("HTTP/1.1 304 Not Modified\r\n"), "{s}");
        assert!(!s.contains("Content-Length"), "304 must not promise a body");
        assert!(!s.contains("Content-Type"));
        assert!(s.contains("Connection: keep-alive\r\n"));
        assert!(s.contains("Last-Modified: Sun, 06 Nov 1994 08:49:37 GMT\r\n"));
        assert!(s.ends_with("\r\n\r\n"));
        // And without a known mtime the validator line is simply absent.
        let h = ResponseHeader::not_modified(false, None);
        let s = String::from_utf8(h.as_bytes().to_vec()).unwrap();
        assert!(!s.contains("Last-Modified"));
        assert!(s.contains("Connection: close\r\n"));
    }
}
