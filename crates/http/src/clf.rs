//! NCSA Common Log Format reading and writing.
//!
//! The paper's realistic workloads replay access logs from Rice
//! University servers (CS, Owlnet, ECE). Those logs are not public, so
//! `flash-workload` *generates* synthetic logs in this format and the
//! replay machinery parses them back — exercising the same code path a
//! user would run on their own logs.
//!
//! Format: `host ident user [timestamp] "request line" status bytes`.

use std::fmt::Write as _;

/// One access-log entry (the fields replay cares about).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Client host (opaque).
    pub host: String,
    /// Request path (from the quoted request line).
    pub path: String,
    /// HTTP status code served.
    pub status: u16,
    /// Response body size in bytes.
    pub bytes: u64,
}

impl LogEntry {
    /// Renders the entry as one CLF line (fixed timestamp — replay
    /// ignores it, and determinism helps tests).
    pub fn to_line(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{} - - [10/Jun/1999:18:46:32 -0600] \"GET {} HTTP/1.0\" {} {}",
            self.host, self.path, self.status, self.bytes
        );
        s
    }

    /// Parses one CLF line. Returns `None` for malformed lines (real logs
    /// contain them; replay skips silently, like the paper's tools).
    pub fn parse(line: &str) -> Option<LogEntry> {
        let host = line.split_whitespace().next()?.to_string();
        let q1 = line.find('"')?;
        let rest = &line[q1 + 1..];
        let q2 = rest.find('"')?;
        let request_line = &rest[..q2];
        let path = request_line.split_whitespace().nth(1)?.to_string();
        let tail = rest[q2 + 1..].trim();
        let mut tail_parts = tail.split_whitespace();
        let status: u16 = tail_parts.next()?.parse().ok()?;
        let bytes: u64 = match tail_parts.next()? {
            "-" => 0,
            n => n.parse().ok()?,
        };
        Some(LogEntry {
            host,
            path,
            status,
            bytes,
        })
    }
}

/// Parses a whole log, skipping malformed lines.
pub fn parse_log(text: &str) -> Vec<LogEntry> {
    text.lines().filter_map(LogEntry::parse).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let e = LogEntry {
            host: "cs.rice.edu".into(),
            path: "/~vivek/flash.html".into(),
            status: 200,
            bytes: 10_240,
        };
        let parsed = LogEntry::parse(&e.to_line()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn parses_dash_bytes_as_zero() {
        let line = "dialup42 - - [10/Jun/1999:00:00:00 -0600] \"GET /x HTTP/1.0\" 304 -";
        let e = LogEntry::parse(line).unwrap();
        assert_eq!(e.status, 304);
        assert_eq!(e.bytes, 0);
    }

    #[test]
    fn malformed_lines_yield_none() {
        assert!(LogEntry::parse("").is_none());
        assert!(LogEntry::parse("no quotes here 200 77").is_none());
        assert!(LogEntry::parse("h - - [t] \"GET\" 200 1").is_none());
        assert!(LogEntry::parse("h - - [t] \"GET /x HTTP/1.0\" twohundred 1").is_none());
    }

    #[test]
    fn parse_log_skips_garbage() {
        let text = "\
a - - [t] \"GET /1 HTTP/1.0\" 200 10
garbage line
b - - [t] \"GET /2 HTTP/1.0\" 404 0";
        let entries = parse_log(text);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].path, "/1");
        assert_eq!(entries[1].status, 404);
    }
}
