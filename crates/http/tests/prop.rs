//! Property tests: the parser must never panic, must round-trip valid
//! requests byte-for-byte in meaning, and header padding must hold for
//! all inputs.

use flash_http::clf::LogEntry;
use flash_http::request::{ParseStatus, RequestParser};
use flash_http::response::{ResponseHeader, Status, ALIGN};
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes, fed in arbitrary chunkings, never panic the
    /// parser and never produce a bogus `Done`.
    #[test]
    fn parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048),
                           cuts in proptest::collection::vec(1usize..64, 0..32)) {
        let mut p = RequestParser::new();
        let mut off = 0;
        let mut cut_iter = cuts.into_iter();
        while off < data.len() {
            let n = cut_iter.next().unwrap_or(17).min(data.len() - off);
            let status = p.feed(&data[off..off + n]);
            off += n;
            if let ParseStatus::Done(req) = status {
                prop_assert!(req.path.starts_with('/'));
            }
        }
    }

    /// Well-formed GET requests parse to the expected fields for any
    /// URL-safe path.
    #[test]
    fn valid_requests_round_trip(
        // First character is never '.', so segments can't be the "." /
        // ".." dot-segments the parser (correctly) treats specially.
        segs in proptest::collection::vec("[a-zA-Z0-9_-][a-zA-Z0-9_.-]{0,11}", 1..6),
        keep in any::<bool>(),
    ) {
        let path = format!("/{}", segs.join("/"));
        let conn = if keep { "keep-alive" } else { "close" };
        let raw = format!("GET {path} HTTP/1.1\r\nHost: h\r\nConnection: {conn}\r\n\r\n");
        let mut p = RequestParser::new();
        match p.feed(raw.as_bytes()) {
            ParseStatus::Done(req) => {
                // `..` and `.` segments are collapsed by normalization, so
                // compare against the normalized form.
                prop_assert!(req.path.starts_with('/'));
                prop_assert_eq!(req.keep_alive(), keep);
                prop_assert!(req.path_components() <= segs.len() as u32);
            }
            other => prop_assert!(false, "expected Done, got {:?}", other),
        }
    }

    /// Padded headers are always 32-byte aligned, for every status,
    /// content type and length.
    #[test]
    fn padded_headers_always_aligned(
        len in any::<u64>(),
        keep in any::<bool>(),
        ct in "[a-z]{2,10}/[a-z]{2,10}",
    ) {
        for status in [Status::Ok, Status::NotFound, Status::InternalError] {
            let h = ResponseHeader::build(status, &ct, len, keep, true);
            prop_assert_eq!(h.len() % ALIGN, 0);
            prop_assert!(h.aligned());
            let text = String::from_utf8(h.as_bytes().to_vec()).expect("ascii");
            prop_assert!(text.ends_with("\r\n\r\n"));
            let expected = format!("Content-Length: {}", len);
            prop_assert!(text.contains(&expected));
        }
    }

    /// CLF entries round-trip for arbitrary hosts/paths/sizes.
    #[test]
    fn clf_round_trip(
        host in "[a-z0-9.-]{1,20}",
        path_seg in "[a-zA-Z0-9_.-]{1,20}",
        status in 100u16..600,
        bytes in any::<u64>(),
    ) {
        let e = LogEntry {
            host,
            path: format!("/{path_seg}"),
            status,
            bytes,
        };
        let parsed = LogEntry::parse(&e.to_line());
        prop_assert_eq!(parsed, Some(e));
    }
}
