//! Facade crate for the Flash (USENIX 1999) reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See `README.md` and `DESIGN.md` at the repository root.

pub use flash_core as core;
pub use flash_experiments as experiments;
pub use flash_http as http;
pub use flash_net as net;
pub use flash_simcore as simcore;
pub use flash_simos as simos;
pub use flash_workload as workload;
