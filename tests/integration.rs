//! Cross-crate integration: the full pipeline from log text to measured
//! bandwidth, and the simulated site served by the real network server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::rc::Rc;

use flash_repro::core::ServerConfig;
use flash_repro::experiments::{run_one, RunParams};
use flash_repro::net::{NetConfig, Server};
use flash_repro::simos::MachineConfig;
use flash_repro::workload::{ClientFleet, ConnMode, SizeDist, Trace, TraceConfig};

fn small_cfg() -> TraceConfig {
    TraceConfig {
        dataset_bytes: 4 * 1024 * 1024,
        n_requests: 20_000,
        ..TraceConfig::owlnet()
    }
}

#[test]
fn log_to_bandwidth_pipeline() {
    // Generate → render CLF → parse back → truncate → simulate.
    let base = Trace::generate(&small_cfg(), 11);
    let parsed = Trace::from_clf(&base.to_clf());
    assert_eq!(parsed.requests.len(), base.requests.len());
    let truncated = Rc::new(parsed.truncate_to_dataset(2 * 1024 * 1024));
    let fleet = ClientFleet {
        clients: 16,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let (r, server) = run_one(
        &MachineConfig::freebsd(),
        &ServerConfig::flash(),
        &truncated,
        &fleet,
        &RunParams::default(),
    )
    .expect("deploy");
    assert!(r.bandwidth_mbps > 10.0, "{r:?}");
    assert!(r.requests_per_sec > 500.0, "{r:?}");
    assert!(server.total_stat(|s| s.requests_done) > 0);
}

#[test]
fn all_architectures_serve_the_same_workload() {
    let trace = Rc::new(Trace::generate(&small_cfg(), 12));
    let fleet = ClientFleet {
        clients: 16,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let machine = MachineConfig::solaris(); // has kernel threads → MT works
    let mut rates = Vec::new();
    for cfg in [
        ServerConfig::flash(),
        ServerConfig::flash_sped(),
        ServerConfig::flash_mp(),
        ServerConfig::flash_mt(),
        ServerConfig::apache_like(),
        ServerConfig::zeus_like(1),
    ] {
        let (r, _) =
            run_one(&machine, &cfg, &trace, &fleet, &RunParams::default()).expect("deploy");
        assert!(r.requests_per_sec > 200.0, "{} too slow: {:?}", cfg.name, r);
        rates.push((cfg.name.clone(), r.requests_per_sec));
    }
    // Apache trails every Flash variant on this cached workload.
    let apache = rates.iter().find(|(n, _)| n == "Apache").expect("ran").1;
    for (name, rate) in &rates {
        if name != "Apache" {
            assert!(
                *rate > apache,
                "{name} ({rate}) should beat Apache ({apache})"
            );
        }
    }
}

#[test]
fn generated_site_served_by_real_server() {
    // Materialize a workload-generated site on disk and serve it with
    // the real AMPED server; every file must come back byte-exact in
    // length with the right status.
    let mut rng = flash_repro::simcore::SimRng::new(5);
    let specs = flash_repro::workload::generate_files(
        &mut rng,
        256 * 1024,
        &SizeDist {
            max_bytes: 64 * 1024,
            ..SizeDist::default()
        },
    );
    let root = std::env::temp_dir().join(format!("flash-integ-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for s in &specs {
        let p = root.join(s.path.trim_start_matches('/'));
        std::fs::create_dir_all(p.parent().expect("nested")).unwrap();
        std::fs::write(p, vec![b'x'; s.size as usize]).unwrap();
    }
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    for s in specs.iter().take(32) {
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        conn.write_all(format!("GET {} HTTP/1.0\r\n\r\n", s.path).as_bytes())
            .unwrap();
        let mut resp = Vec::new();
        conn.read_to_end(&mut resp).unwrap();
        let text = String::from_utf8_lossy(&resp);
        assert!(text.starts_with("HTTP/1.1 200"), "{}: {text}", s.path);
        let body_start = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        assert_eq!(
            (resp.len() - body_start) as u64,
            s.size,
            "wrong body length for {}",
            s.path
        );
    }
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn simulated_and_real_servers_agree_on_header_format() {
    // The simulator computes response sizes from flash-http headers; the
    // real server sends those same headers. Spot-check that a simulated
    // response size matches what the real server actually transmits.
    let size = 12_345u64;
    let root = std::env::temp_dir().join(format!("flash-agree-{}", std::process::id()));
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(root.join("f.html"), vec![b'y'; size as usize]).unwrap();
    // The real server stamps Last-Modified from the file's mtime, so
    // the reference header must carry the same field to agree on
    // length (IMF-fixdate is fixed-width, so the value cannot skew it).
    let mtime = std::fs::metadata(root.join("f.html"))
        .unwrap()
        .modified()
        .unwrap()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_secs() as i64;
    // Since the send-plane refactor every 200 also carries the strong
    // ETag derived from the same (mtime, length) pair, so the reference
    // header must too.
    let etag = flash_repro::http::etag_value(Some(mtime), size, false);
    let hdr = flash_repro::http::ResponseHeader::build_full(
        flash_repro::http::Status::Ok,
        Some(("text/html", size)),
        false,
        true,
        Some(mtime),
        flash_repro::http::HeaderExtras {
            etag: Some(&etag),
            ..Default::default()
        },
    );
    let server = Server::start("127.0.0.1:0", NetConfig::new(&root)).unwrap();
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(b"GET /f.html HTTP/1.0\r\n\r\n").unwrap();
    let mut resp = Vec::new();
    conn.read_to_end(&mut resp).unwrap();
    let body_start = resp.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
    assert_eq!(body_start, hdr.len(), "header lengths agree");
    assert_eq!(resp.len() as u64, hdr.len() as u64 + size);
    server.stop();
    let _ = std::fs::remove_dir_all(root);
}
