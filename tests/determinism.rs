//! Reproducibility: a simulation is a pure function of its seed.

use std::rc::Rc;

use flash_repro::core::ServerConfig;
use flash_repro::experiments::{run_one, RunParams};
use flash_repro::simos::MachineConfig;
use flash_repro::workload::{ClientFleet, ConnMode, Trace, TraceConfig};

fn run(seed: u64) -> (f64, f64, u64) {
    let trace = Rc::new(Trace::generate(
        &TraceConfig {
            dataset_bytes: 3 * 1024 * 1024,
            n_requests: 10_000,
            ..TraceConfig::ece()
        },
        seed,
    ));
    let fleet = ClientFleet {
        clients: 12,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let (r, _) = run_one(
        &MachineConfig::freebsd(),
        &ServerConfig::flash(),
        &trace,
        &fleet,
        &RunParams::default(),
    )
    .expect("deploy");
    (r.bandwidth_mbps, r.requests_per_sec, r.disk_reads)
}

#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    let a = run(77);
    let b = run(77);
    assert_eq!(a.0.to_bits(), b.0.to_bits(), "bandwidth must be identical");
    assert_eq!(a.1.to_bits(), b.1.to_bits(), "rate must be identical");
    assert_eq!(a.2, b.2, "disk reads must be identical");
}

#[test]
fn different_seeds_vary_but_agree_qualitatively() {
    let a = run(1);
    let b = run(2);
    // Different traces: numbers differ...
    assert_ne!(a.0.to_bits(), b.0.to_bits());
    // ...but the workload class is the same, so within 2x of each other.
    let ratio = a.0 / b.0;
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "seeds too divergent: {a:?} vs {b:?}"
    );
}
