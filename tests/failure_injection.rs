//! Failure injection: the system must degrade, not break, under memory
//! starvation, disk saturation, pathological clients and edge-case sites.

use std::rc::Rc;

use flash_repro::core::{deploy, FileSpec, ServerConfig, Site};
use flash_repro::experiments::{run_one, RunParams};
use flash_repro::simcore::SimTime;
use flash_repro::simos::{MachineConfig, Simulation};
use flash_repro::workload::{attach_fleet, ClientFleet, ConnMode, Trace, TraceConfig};

fn ece_small(seed: u64) -> Rc<Trace> {
    Rc::new(Trace::generate(
        &TraceConfig {
            dataset_bytes: 24 * 1024 * 1024,
            n_requests: 30_000,
            ..TraceConfig::ece()
        },
        seed,
    ))
}

#[test]
fn survives_tiny_memory() {
    // 12 MB of RAM leaves almost no page cache: heavily disk-bound but
    // the server must keep making progress.
    let mut machine = MachineConfig::freebsd();
    machine.memory.total_bytes = 12 * 1024 * 1024;
    machine.memory.kernel_bytes = 6 * 1024 * 1024;
    let fleet = ClientFleet {
        clients: 16,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let (r, _) = run_one(
        &machine,
        &ServerConfig::flash(),
        &ece_small(3),
        &fleet,
        &RunParams::default(),
    )
    .expect("deploy");
    assert!(r.requests_per_sec > 20.0, "no progress: {r:?}");
    assert!(r.disk_util > 0.5, "should be disk-bound: {r:?}");
}

#[test]
fn elevator_beats_fcfs_on_a_saturated_disk() {
    let fleet = ClientFleet {
        clients: 32,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let run = |elevator: bool| {
        let mut machine = MachineConfig::freebsd();
        machine.memory.total_bytes = 24 * 1024 * 1024;
        machine.disk.elevator = elevator;
        let (r, _) = run_one(
            &machine,
            &ServerConfig::flash(),
            &ece_small(4),
            &fleet,
            &RunParams::default(),
        )
        .expect("deploy");
        r.requests_per_sec
    };
    let clook = run(true);
    let fcfs = run(false);
    assert!(
        clook > fcfs,
        "C-LOOK ({clook:.0}/s) should beat FCFS ({fcfs:.0}/s) when disk-bound"
    );
}

#[test]
fn slow_wan_clients_do_not_stall_the_server() {
    // 128 modem-speed clients (56 kb/s): per-client transfers take
    // seconds, send buffers stay full, but throughput must simply track
    // the aggregate client capacity instead of collapsing.
    let trace = ece_small(5);
    let fleet = ClientFleet {
        clients: 128,
        mode: ConnMode::Persistent,
        link_bps: 56_000,
        rtt_ns: 80_000_000, // 80 ms
    };
    let params = RunParams {
        warmup: SimTime::from_secs(5),
        window: SimTime::from_secs(20),
        prewarm_cache: true,
    };
    let (r, _) = run_one(
        &MachineConfig::freebsd(),
        &ServerConfig::flash(),
        &trace,
        &fleet,
        &params,
    )
    .expect("deploy");
    // Aggregate capacity is 128 × 56 kb/s ≈ 7.2 Mb/s; the server should
    // come close to saturating the clients and stay far from CPU limits.
    assert!(r.bandwidth_mbps > 3.0, "{r:?}");
    assert!(r.bandwidth_mbps < 8.0, "{r:?}");
    assert!(r.cpu_util < 0.2, "server nearly idle: {r:?}");
}

#[test]
fn zero_byte_and_single_byte_files_are_served() {
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let specs = vec![
        FileSpec::file("/empty.html", 0),
        FileSpec::file("/one.html", 1),
    ];
    let site = Site::build(&mut sim.kernel, &specs);
    let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
    let trace = Rc::new(Trace {
        specs,
        requests: vec![0, 1],
    });
    attach_fleet(
        &mut sim,
        server.listen,
        trace,
        &ClientFleet {
            clients: 2,
            mode: ConnMode::PerRequest,
            ..ClientFleet::default()
        },
    );
    sim.run_until_guarded(SimTime::from_millis(500), 2_000_000);
    assert!(
        sim.kernel.metrics.requests.total() > 50,
        "tiny files must flow: {}",
        sim.kernel.metrics.requests.total()
    );
}

#[test]
fn huge_single_file_larger_than_memory_streams() {
    // A 200 MB file cannot be cached in 128 MB: every pass re-reads from
    // disk through the 64 KB chunk pipeline. One client, sequential.
    let mut sim = Simulation::new(MachineConfig::freebsd());
    let specs = vec![FileSpec::file("/huge.tar", 200 * 1024 * 1024)];
    let site = Site::build(&mut sim.kernel, &specs);
    let server = deploy(&mut sim, &ServerConfig::flash(), site).expect("deploy");
    let trace = Rc::new(Trace {
        specs,
        requests: vec![0],
    });
    attach_fleet(
        &mut sim,
        server.listen,
        trace,
        &ClientFleet {
            clients: 1,
            mode: ConnMode::PerRequest,
            ..ClientFleet::default()
        },
    );
    sim.run_until_guarded(SimTime::from_secs(30), 20_000_000);
    let bytes = sim.kernel.metrics.bytes_out.total();
    assert!(
        bytes > 100 * 1024 * 1024,
        "large transfer stalled at {bytes} bytes"
    );
    assert!(sim.kernel.disk.bytes_read > 100 * 1024 * 1024);
}

#[test]
fn overload_many_clients_small_machine_degrades_gracefully() {
    // 300 per-request clients against a small MP pool: the accept queue
    // absorbs the herd; throughput must stay positive and bounded.
    let trace = ece_small(6);
    let fleet = ClientFleet {
        clients: 300,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let (r, _) = run_one(
        &MachineConfig::solaris(),
        &ServerConfig::flash_mp(),
        &trace,
        &fleet,
        &RunParams::default(),
    )
    .expect("deploy");
    assert!(r.requests_per_sec > 100.0, "collapsed: {r:?}");
}
