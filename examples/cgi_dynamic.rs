//! Dynamic content (§5.6): a site mixing static pages with CGI
//! applications of different compute costs, served by Flash with
//! persistent CGI application processes.
//!
//! Demonstrates the AMPED property for dynamic content: CGI apps compute
//! (or block) for milliseconds without stalling the event loop, which
//! keeps serving cached static content at full speed in the meantime.
//!
//! Run with: `cargo run --release --example cgi_dynamic`

use std::rc::Rc;

use flash_repro::core::{deploy, FileKind, FileSpec, ServerConfig, Site};
use flash_repro::simcore::SimTime;
use flash_repro::simos::{MachineConfig, Simulation};
use flash_repro::workload::{attach_fleet, ClientFleet, ConnMode, Trace};

fn main() {
    let mut sim = Simulation::new(MachineConfig::freebsd());

    // Static pages plus two CGI endpoints: a cheap form handler and an
    // expensive report generator.
    let mut specs: Vec<FileSpec> = (0..50)
        .map(|i| FileSpec::file(format!("/pages/p{i}.html"), 6_000))
        .collect();
    specs.push(FileSpec {
        path: "/cgi-bin/form".into(),
        size: 0,
        kind: FileKind::Cgi {
            compute_ns: 2_000_000, // 2 ms
            output_bytes: 2_000,
        },
    });
    specs.push(FileSpec {
        path: "/cgi-bin/report".into(),
        size: 0,
        kind: FileKind::Cgi {
            compute_ns: 40_000_000, // 40 ms
            output_bytes: 60_000,
        },
    });
    let n_static = 50u64;

    let site = Site::build(&mut sim.kernel, &specs);
    let mut cfg = ServerConfig::flash();
    cfg.cgi_apps = 4; // persistent FastCGI-style application processes
    let server = deploy(&mut sim, &cfg, Rc::clone(&site)).expect("deploy");

    // Request mix: 90% static, 8% cheap CGI, 2% expensive CGI.
    let requests: Vec<u64> = (0..10_000u64)
        .map(|i| match i % 50 {
            0 => n_static + 1,       // report
            1..=4 => n_static,       // form
            _ => (i * 7) % n_static, // static
        })
        .collect();
    let trace = Rc::new(Trace { specs, requests });
    attach_fleet(
        &mut sim,
        server.listen,
        trace,
        &ClientFleet {
            clients: 24,
            mode: ConnMode::PerRequest,
            ..ClientFleet::default()
        },
    );

    sim.run_until(SimTime::from_secs(1));
    sim.kernel.metrics.open_window(sim.kernel.now());
    sim.run_until(SimTime::from_secs(5));

    let now = sim.kernel.now();
    let m = &sim.kernel.metrics;
    println!("requests/s   : {:.0}", m.request_rate(now));
    println!("bandwidth    : {:.1} Mb/s", m.bandwidth_mbps(now));
    println!(
        "CGI requests : {} (served by {} persistent app processes)",
        server.total_stat(|s| s.cgi_requests),
        cfg.cgi_apps
    );
    println!(
        "latency      : mean {:.2} ms, p99 ~{} ms",
        m.response_latency.mean() / 1e6,
        m.response_latency.quantile(0.99) / 1_000_000
    );
    println!(
        "\nThe event loop kept serving static hits while the report app\n\
         computed for 40 ms at a time — the §5.6 design: CGI processes\n\
         \"can block for disk activity ... without affecting the server\"."
    );
}
