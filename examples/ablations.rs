//! Runs the ablation studies (beyond the paper's figures): helper-pool
//! sizing, §5.5 alignment, disk-head scheduling, and §5.7 residency
//! policies. Writes series to `results/ablation-*.csv`.
//!
//! Run with:
//!   cargo run --release --example ablations            # full
//!   cargo run --release --example ablations -- quick   # smoke

use flash_repro::experiments::{ablation, Scale};

fn main() -> std::io::Result<()> {
    let scale = if std::env::args().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    std::fs::create_dir_all("results")?;
    for fig in ablation::all(scale) {
        println!("{}", fig.to_markdown());
        std::fs::write(format!("results/{}.csv", fig.id), fig.to_csv())?;
    }
    Ok(())
}
