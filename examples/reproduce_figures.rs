//! Regenerates every figure of the paper's evaluation (Figures 6–12) and
//! writes the series as Markdown + CSV under `results/`.
//!
//! Run with:
//!   cargo run --release --example reproduce_figures           # full sweeps
//!   cargo run --release --example reproduce_figures -- quick  # smoke run
//!
//! The full run takes a few minutes of wall time (hundreds of simulated
//! server-minutes); EXPERIMENTS.md archives one full run's output.

use flash_repro::experiments::Figure;
use flash_repro::experiments::{breakdown, dataset_sweep, single_file, trace_bars, wan, Scale};

fn main() -> std::io::Result<()> {
    let scale = if std::env::args().any(|a| a == "quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    std::fs::create_dir_all("results")?;
    let mut all: Vec<Figure> = Vec::new();

    eprintln!("[1/7] Figure 6: single-file test, Solaris...");
    all.extend(single_file::fig06(scale));
    eprintln!("[2/7] Figure 7: single-file test, FreeBSD...");
    all.extend(single_file::fig07(scale));
    eprintln!("[3/7] Figure 8: Rice CS + Owlnet traces, Solaris...");
    all.extend(trace_bars::fig08(scale));
    eprintln!("[4/7] Figure 9: dataset sweep, FreeBSD...");
    all.push(dataset_sweep::fig09(scale));
    eprintln!("[5/7] Figure 10: dataset sweep, Solaris...");
    all.push(dataset_sweep::fig10(scale));
    eprintln!("[6/7] Figure 11: optimization breakdown...");
    all.push(breakdown::fig11(scale));
    eprintln!("[7/7] Figure 12: WAN client sweep, Solaris...");
    all.push(wan::fig12(scale));

    for fig in &all {
        println!("{}", fig.to_markdown());
        std::fs::write(format!("results/{}.csv", fig.id), fig.to_csv())?;
    }
    let md: String = all.iter().map(|f| f.to_markdown() + "\n").collect();
    std::fs::write("results/figures.md", md)?;
    eprintln!("wrote results/figures.md and per-figure CSVs");
    Ok(())
}
