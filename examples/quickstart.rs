//! Quickstart: deploy the Flash (AMPED) server in the simulator, replay a
//! small synthetic workload against it, and print what happened.
//!
//! Run with: `cargo run --example quickstart`

use std::rc::Rc;

use flash_repro::core::{deploy, ServerConfig, Site};
use flash_repro::simcore::SimTime;
use flash_repro::simos::{MachineConfig, Simulation};
use flash_repro::workload::{attach_fleet, ClientFleet, ConnMode, Trace, TraceConfig};

fn main() {
    // A machine like the paper's testbed (333 MHz P-II, 128 MB, FreeBSD).
    let mut sim = Simulation::new(MachineConfig::freebsd());

    // A small synthetic site: ~8 MB across a few hundred files, Zipf
    // popularity.
    let trace = Rc::new(Trace::generate(
        &TraceConfig {
            dataset_bytes: 8 * 1024 * 1024,
            n_requests: 50_000,
            ..TraceConfig::owlnet()
        },
        42,
    ));
    let site = Site::build(&mut sim.kernel, &trace.specs);
    println!(
        "site: {} files, {:.1} MB dataset",
        site.len(),
        site.dataset_bytes() as f64 / (1024.0 * 1024.0)
    );

    // Deploy Flash (the AMPED architecture with all §5 optimizations).
    let server = deploy(&mut sim, &ServerConfig::flash(), Rc::clone(&site)).unwrap();

    // 32 LAN clients issuing requests back-to-back.
    attach_fleet(
        &mut sim,
        server.listen,
        Rc::clone(&trace),
        &ClientFleet {
            clients: 32,
            mode: ConnMode::PerRequest,
            ..ClientFleet::default()
        },
    );

    // Warm up for one simulated second, then measure four.
    sim.run_until(SimTime::from_secs(1));
    sim.kernel.metrics.open_window(sim.kernel.now());
    sim.run_until(SimTime::from_secs(5));

    let now = sim.kernel.now();
    let m = &sim.kernel.metrics;
    println!("requests/s     : {:.0}", m.request_rate(now));
    println!("bandwidth      : {:.1} Mb/s", m.bandwidth_mbps(now));
    println!("mean latency   : {:.2} ms", m.response_latency.mean() / 1e6);
    println!("CPU utilization: {:.0}%", m.cpu_utilization(now) * 100.0);
    println!("disk reads     : {}", m.disk_reads.total());
    let stats = |f: fn(&flash_repro::core::CacheStats) -> u64| server.total_stat(f);
    println!(
        "caches         : path {}/{} hits, header {} hits, mmap {} hits",
        stats(|s| s.path_hits),
        stats(|s| s.path_hits + s.path_misses),
        stats(|s| s.header_hits),
        stats(|s| s.mmap_hits),
    );
    println!(
        "helpers        : {} jobs ({} cold reads deferred to helpers)",
        stats(|s| s.helper_jobs),
        stats(|s| s.mincore_missing),
    );
}
