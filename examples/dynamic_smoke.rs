//! Dynamic-tier smoke test: a persistent worker pool serving chunked
//! responses, a worker crash mid-body, and the pool respawning a fresh
//! worker for the next request.
//!
//! The server routes `/app/*` to the dynamic tier. The first phase
//! uses the built-in echo worker; the second points
//! `dynamic_command` at a shell script that emits half a body and
//! dies, demonstrating that the truncation is visible on the wire
//! (no chunked terminator) and that the listener stays healthy.
//!
//! Run with: `cargo run --example dynamic_smoke`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use flash_repro::http::chunked::ChunkedDecoder;
use flash_repro::net::{NetConfig, Server};

fn fetch(addr: std::net::SocketAddr, req: &str) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(req.as_bytes()).expect("send");
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

/// Splits a raw response at the header terminator.
fn split(resp: &[u8]) -> (String, &[u8]) {
    let pos = resp
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    (
        String::from_utf8_lossy(&resp[..pos]).into_owned(),
        &resp[pos + 4..],
    )
}

fn main() {
    let root = std::env::temp_dir().join(format!("flash-dynamic-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(root.join("index.html"), b"static tier still here").unwrap();

    // Phase 1: the built-in echo worker streams chunked bodies.
    let cfg = NetConfig::builder(&root)
        .event_loops(1)
        .dynamic_prefix("/app/")
        .build()
        .expect("consistent config");
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr();
    println!("dynamic tier on http://{addr}/app/* (built-in worker)");

    let resp = fetch(addr, "GET /app/demo HTTP/1.0\r\n\r\n");
    let (hdr, wire) = split(&resp);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    assert!(hdr.contains("Transfer-Encoding: chunked"), "{hdr}");
    let body = ChunkedDecoder::decode_all(wire).expect("well-formed chunked body");
    assert_eq!(body, b"hello from worker: /app/demo");
    println!("GET /app/demo -> 200, chunked body {:?}", body.len());
    assert_eq!(server.stats().dynamic_requests(), 1);
    assert_eq!(server.stats().worker_respawns(), 0);
    server.stop();

    // Phase 2: a worker that dies halfway through its body. The pool
    // retires the corpse and spawns a fresh worker for the next
    // request — the listener never degrades.
    let script = root.join("crashy.sh");
    std::fs::write(
        &script,
        "if [ -f \"$0.once\" ]; then\n\
         while read -r m p; do b=\"recovered: $p\"; \
         printf 'DATA %s\\n%s' \"${#b}\" \"$b\"; printf 'END\\n'; done\n\
         else\n: > \"$0.once\"\nread -r m p\nprintf 'DATA 4\\nhalf'\nexit 1\nfi\n",
    )
    .unwrap();
    let cfg = NetConfig::builder(&root)
        .event_loops(1)
        .dynamic_prefix("/app/")
        .dynamic_command(vec!["/bin/sh".into(), script.to_str().unwrap().to_string()])
        .build()
        .expect("consistent config");
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr();

    let resp = fetch(addr, "GET /app/crash HTTP/1.0\r\n\r\n");
    let (hdr, wire) = split(&resp);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    let mut dec = ChunkedDecoder::new();
    dec.feed(wire).unwrap();
    assert!(
        !dec.is_done(),
        "a crashed worker must leave the chunked body visibly truncated"
    );
    println!(
        "GET /app/crash -> worker died mid-body: {} bytes arrived, no terminator",
        dec.body().len()
    );

    // The respawn counter is bumped by the helper that reaps the
    // corpse; give it a moment.
    let t0 = std::time::Instant::now();
    while server.stats().worker_respawns() == 0 {
        assert!(t0.elapsed() < Duration::from_secs(5), "respawn not counted");
        std::thread::sleep(Duration::from_millis(20));
    }

    // A fresh worker serves the next request on the same listener.
    let resp = fetch(addr, "GET /app/next HTTP/1.0\r\n\r\n");
    let (hdr, wire) = split(&resp);
    assert!(hdr.starts_with("HTTP/1.1 200 OK"), "{hdr}");
    let body = ChunkedDecoder::decode_all(wire).expect("clean body after respawn");
    assert_eq!(body, b"recovered: /app/next");
    println!(
        "GET /app/next -> 200 after respawn (worker_respawns={})",
        server.stats().worker_respawns()
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&root);
    println!("dynamic smoke: OK");
}
