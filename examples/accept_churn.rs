//! Connection-setup-rate smoke test for the accept path: hammers the
//! real AMPED server with short-lived connections — one request each,
//! no keep-alive, so every request pays the full accept cost — under
//! **both accept modes** (the single acceptor thread and the per-shard
//! `SO_REUSEPORT` listeners), asserts every connection is served, and
//! prints the connections-per-second each mode sustained.
//!
//! Run with: `cargo run --release --example accept_churn`
//! CI runs this on every push; it exits non-zero on any violation.
//! Appends both modes' numbers to the `BENCH_net.json` perf
//! trajectory (destination overridable with `FLASH_BENCH_JSON`).
//!
//! Doubles as the `/.flash/metrics` smoke: the endpoint is scraped
//! before and after the churn, every exposition line must parse,
//! counters must be monotone across the two scrapes, and the final
//! `flash_requests` must agree exactly with the example's own count —
//! which also proves scrapes land in `flash_metrics_requests`, never
//! in `flash_requests`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use flash_repro::net::report::percentile;
use flash_repro::net::{AcceptMode, AcceptModeKind, BenchReport, NetConfig, Server};

const CLIENT_THREADS: usize = 8;
const CONNS_PER_THREAD: usize = 250;
const TOTAL_CONNS: usize = CLIENT_THREADS * CONNS_PER_THREAD;

/// Hammers the server; returns the wall time, every connection's
/// connect-to-close latency in milliseconds, and total response bytes.
fn churn(addr: std::net::SocketAddr) -> (Duration, Vec<f64>, u64) {
    let start = Instant::now();
    let threads: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(CONNS_PER_THREAD);
                let mut bytes = 0u64;
                for _ in 0..CONNS_PER_THREAD {
                    let conn_start = Instant::now();
                    let mut s = TcpStream::connect(addr).expect("connect");
                    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    s.write_all(b"GET /index.html HTTP/1.0\r\n\r\n")
                        .expect("send");
                    let mut resp = Vec::new();
                    s.read_to_end(&mut resp).expect("read");
                    assert!(
                        resp.starts_with(b"HTTP/1.1 200 OK\r\n"),
                        "short-lived connection not served"
                    );
                    latencies.push(conn_start.elapsed().as_secs_f64() * 1e3);
                    bytes += resp.len() as u64;
                }
                (latencies, bytes)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(TOTAL_CONNS);
    let mut bytes = 0u64;
    for t in threads {
        let (l, b) = t.join().expect("client thread");
        latencies.extend(l);
        bytes += b;
    }
    (start.elapsed(), latencies, bytes)
}

/// One scrape of `GET /.flash/metrics`: asserts the response is 200
/// and every exposition line parses, then returns the samples (metric
/// name — with any `{le="..."}` label intact — to value) and the
/// `# TYPE` map.
fn scrape(
    addr: std::net::SocketAddr,
) -> (
    std::collections::HashMap<String, u64>,
    std::collections::HashMap<String, String>,
) {
    let mut s = TcpStream::connect(addr).expect("connect for scrape");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(b"GET /.flash/metrics HTTP/1.0\r\n\r\n")
        .expect("send scrape");
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).expect("read scrape");
    let text = String::from_utf8(resp).expect("metrics must be UTF-8");
    assert!(
        text.starts_with("HTTP/1.1 200 OK\r\n"),
        "metrics endpoint refused the scrape: {}",
        text.lines().next().unwrap_or("")
    );
    let body = text.split_once("\r\n\r\n").expect("header terminator").1;
    let mut samples = std::collections::HashMap::new();
    let mut types = std::collections::HashMap::new();
    for line in body.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').expect("TYPE line shape");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown type in {line:?}"
            );
            types.insert(name.to_string(), kind.to_string());
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(' ').expect("sample line shape");
        assert!(name.starts_with("flash_"), "unprefixed metric: {line:?}");
        let value: u64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        assert!(
            samples.insert(name.to_string(), value).is_none(),
            "duplicate sample {name}"
        );
    }
    assert!(!samples.is_empty(), "empty exposition");
    (samples, types)
}

/// The base (unlabelled, unsuffixed) metric name a sample belongs to,
/// for the `# TYPE` lookup: `flash_x_bucket{le="8"}` → `flash_x`.
fn base_name(sample: &str) -> &str {
    let name = sample.split('{').next().unwrap();
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

fn main() {
    let root = std::env::temp_dir().join(format!("flash-accept-churn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(root.join("index.html"), b"<html>churn</html>").unwrap();

    let mut report = BenchReport::new();
    for mode in [AcceptMode::Single, AcceptMode::ReusePort] {
        let server = Server::start(
            "127.0.0.1:0",
            NetConfig::new(&root)
                .with_event_loops(4)
                .with_accept_mode(mode)
                .with_metrics_endpoint(true),
        )
        .unwrap();
        let resolved = server.accept_mode();
        let (before, _) = scrape(server.addr());
        let (elapsed, latencies_ms, bytes) = churn(server.addr());
        let (after, types) = scrape(server.addr());
        // Counters never go backwards between scrapes (gauges may;
        // histogram buckets, sums and counts are cumulative, so they
        // are held to the same bar). Zero buckets are omitted from the
        // exposition, so only keys present in both scrapes compare.
        for (name, &was) in &before {
            let kind = types
                .get(base_name(name))
                .unwrap_or_else(|| panic!("sample {name} has no TYPE"));
            if kind == "gauge" {
                continue;
            }
            if let Some(&now) = after.get(name) {
                assert!(now >= was, "counter {name} went backwards: {was} -> {now}");
            }
        }
        assert_eq!(
            after["flash_requests"], TOTAL_CONNS as u64,
            "scraped flash_requests must agree with the churn count \
             (and scrapes must not inflate it)"
        );
        // The counter increments when the response's last byte is
        // queued, so a scrape's body can only show *earlier* scrapes:
        // the second scrape must see at least the first one.
        assert!(
            after["flash_metrics_requests"] >= 1,
            "scrapes must be counted as metrics requests"
        );
        assert_eq!(
            after["flash_request_latency_nanos_count"], TOTAL_CONNS as u64,
            "every served request must land in the latency histogram"
        );
        let stats = server.stats();
        assert_eq!(
            stats.requests(),
            TOTAL_CONNS as u64,
            "every connection must be served exactly once"
        );
        // + 2: the metrics scrapes bracketing the churn are real
        // connections too.
        assert_eq!(
            stats.accepted(),
            TOTAL_CONNS as u64 + 2,
            "every connection must be accepted"
        );
        if resolved == AcceptModeKind::ReusePort {
            // The kernel hash must have spread the churn across the
            // shards' listeners — an acceptorless shard would mean its
            // listener never took traffic.
            for (i, shard) in stats.per_shard().iter().enumerate() {
                let accepted = shard.accepted.load(std::sync::atomic::Ordering::Relaxed);
                assert!(accepted > 0, "shard {i} accepted nothing under reuseport");
            }
        }
        println!(
            "accept churn OK [{}]: {} conns in {:?} ({:.0} conns/sec), backpressure events: {}",
            resolved.name(),
            TOTAL_CONNS,
            elapsed,
            TOTAL_CONNS as f64 / elapsed.as_secs_f64(),
            stats.accept_backpressure(),
        );
        let mut sorted = latencies_ms;
        sorted.sort_by(f64::total_cmp);
        report.record_full(
            &format!("accept_churn/{}", resolved.name()),
            TOTAL_CONNS as u64,
            elapsed.as_secs_f64(),
            true,
            Some(bytes),
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
        );
        server.stop();
    }
    match report.write() {
        Ok(path) => println!("bench report: {}", path.display()),
        Err(e) => eprintln!("bench report not written: {e}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}
