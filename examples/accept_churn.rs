//! Connection-setup-rate smoke test for the accept path: hammers the
//! real AMPED server with short-lived connections — one request each,
//! no keep-alive, so every request pays the full accept cost — under
//! **both accept modes** (the single acceptor thread and the per-shard
//! `SO_REUSEPORT` listeners), asserts every connection is served, and
//! prints the connections-per-second each mode sustained.
//!
//! Run with: `cargo run --release --example accept_churn`
//! CI runs this on every push; it exits non-zero on any violation.
//! Appends both modes' numbers to the `BENCH_net.json` perf
//! trajectory (destination overridable with `FLASH_BENCH_JSON`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use flash_repro::net::report::percentile;
use flash_repro::net::{AcceptMode, AcceptModeKind, BenchReport, NetConfig, Server};

const CLIENT_THREADS: usize = 8;
const CONNS_PER_THREAD: usize = 250;
const TOTAL_CONNS: usize = CLIENT_THREADS * CONNS_PER_THREAD;

/// Hammers the server; returns the wall time, every connection's
/// connect-to-close latency in milliseconds, and total response bytes.
fn churn(addr: std::net::SocketAddr) -> (Duration, Vec<f64>, u64) {
    let start = Instant::now();
    let threads: Vec<_> = (0..CLIENT_THREADS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(CONNS_PER_THREAD);
                let mut bytes = 0u64;
                for _ in 0..CONNS_PER_THREAD {
                    let conn_start = Instant::now();
                    let mut s = TcpStream::connect(addr).expect("connect");
                    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    s.write_all(b"GET /index.html HTTP/1.0\r\n\r\n")
                        .expect("send");
                    let mut resp = Vec::new();
                    s.read_to_end(&mut resp).expect("read");
                    assert!(
                        resp.starts_with(b"HTTP/1.1 200 OK\r\n"),
                        "short-lived connection not served"
                    );
                    latencies.push(conn_start.elapsed().as_secs_f64() * 1e3);
                    bytes += resp.len() as u64;
                }
                (latencies, bytes)
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(TOTAL_CONNS);
    let mut bytes = 0u64;
    for t in threads {
        let (l, b) = t.join().expect("client thread");
        latencies.extend(l);
        bytes += b;
    }
    (start.elapsed(), latencies, bytes)
}

fn main() {
    let root = std::env::temp_dir().join(format!("flash-accept-churn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(root.join("index.html"), b"<html>churn</html>").unwrap();

    let mut report = BenchReport::new();
    for mode in [AcceptMode::Single, AcceptMode::ReusePort] {
        let server = Server::start(
            "127.0.0.1:0",
            NetConfig::new(&root)
                .with_event_loops(4)
                .with_accept_mode(mode),
        )
        .unwrap();
        let resolved = server.accept_mode();
        let (elapsed, latencies_ms, bytes) = churn(server.addr());
        let stats = server.stats();
        assert_eq!(
            stats.requests(),
            TOTAL_CONNS as u64,
            "every connection must be served exactly once"
        );
        assert_eq!(
            stats.accepted(),
            TOTAL_CONNS as u64,
            "every connection must be accepted"
        );
        if resolved == AcceptModeKind::ReusePort {
            // The kernel hash must have spread the churn across the
            // shards' listeners — an acceptorless shard would mean its
            // listener never took traffic.
            for (i, shard) in stats.per_shard().iter().enumerate() {
                let accepted = shard.accepted.load(std::sync::atomic::Ordering::Relaxed);
                assert!(accepted > 0, "shard {i} accepted nothing under reuseport");
            }
        }
        println!(
            "accept churn OK [{}]: {} conns in {:?} ({:.0} conns/sec), backpressure events: {}",
            resolved.name(),
            TOTAL_CONNS,
            elapsed,
            TOTAL_CONNS as f64 / elapsed.as_secs_f64(),
            stats.accept_backpressure(),
        );
        let mut sorted = latencies_ms;
        sorted.sort_by(f64::total_cmp);
        report.record_full(
            &format!("accept_churn/{}", resolved.name()),
            TOTAL_CONNS as u64,
            elapsed.as_secs_f64(),
            true,
            Some(bytes),
            percentile(&sorted, 0.50),
            percentile(&sorted, 0.99),
        );
        server.stop();
    }
    match report.write() {
        Ok(path) => println!("bench report: {}", path.display()),
        Err(e) => eprintln!("bench report not written: {e}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}
