//! Trace replay from an access log, the paper's §6.2 methodology:
//! generate a server log in Common Log Format (standing in for the Rice
//! CS/Owlnet/ECE logs), parse it back, truncate it to several dataset
//! sizes, and replay each against Flash and Flash-SPED — reproducing the
//! cached-to-disk-bound crossover in miniature.
//!
//! Run with: `cargo run --release --example trace_replay`

use std::rc::Rc;

use flash_repro::core::ServerConfig;
use flash_repro::experiments::{run_one, RunParams};
use flash_repro::simos::MachineConfig;
use flash_repro::workload::{ClientFleet, ConnMode, Trace, TraceConfig};

fn replay(trace: &Rc<Trace>, cfg: &ServerConfig) -> f64 {
    // The experiment harness pre-warms the page cache to the steady
    // state of a long-running server, then measures a 4 s window.
    let fleet = ClientFleet {
        clients: 64,
        mode: ConnMode::PerRequest,
        ..ClientFleet::default()
    };
    let (r, _) = run_one(
        &MachineConfig::freebsd(),
        cfg,
        trace,
        &fleet,
        &RunParams::default(),
    )
    .expect("deploy");
    r.bandwidth_mbps
}

fn main() {
    // 1. "Obtain" an access log. A real deployment would read its own
    //    server logs; here we synthesize one with ECE-trace statistics
    //    and write it in NCSA Common Log Format.
    let base = Trace::generate(
        &TraceConfig {
            dataset_bytes: 160 * 1024 * 1024,
            n_requests: 120_000,
            ..TraceConfig::ece()
        },
        7,
    );
    let clf = base.to_clf();
    println!(
        "generated log: {} lines, first line:\n  {}",
        base.requests.len(),
        clf.lines().next().unwrap_or("")
    );

    // 2. Parse the log back — the exact path a user's own logs take.
    let parsed = Rc::new(Trace::from_clf(&clf));
    println!(
        "parsed back : {} requests over {} distinct files ({} MB)\n",
        parsed.requests.len(),
        parsed.specs.len(),
        parsed.dataset_bytes() / (1024 * 1024)
    );

    // 3. Truncate to a range of dataset sizes and replay (§6.2).
    println!("| dataset (MB) | Flash (Mb/s) | Flash-SPED (Mb/s) |");
    println!("|---|---|---|");
    for mb in [30u64, 90, 150] {
        let t = Rc::new(parsed.truncate_to_dataset(mb * 1024 * 1024));
        let flash = replay(&t, &ServerConfig::flash());
        let sped = replay(&t, &ServerConfig::flash_sped());
        println!("| {mb} | {flash:.1} | {sped:.1} |");
    }
    println!("\nExpected shape: the two match while cached; SPED collapses");
    println!("once the dataset outgrows the ~105 MB file cache (Figure 9).");
}
