//! A real AMPED web server on real sockets: creates a docroot, starts the
//! `flash-net` server, fetches pages over loopback TCP, and prints the
//! helper/cache statistics.
//!
//! Run with: `cargo run --example real_server`

use std::io::{Read, Write};
use std::net::TcpStream;

use flash_repro::net::{NetConfig, Server};

fn fetch(addr: std::net::SocketAddr, req: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(req.as_bytes()).expect("send");
    let mut out = Vec::new();
    s.read_to_end(&mut out).expect("read");
    String::from_utf8_lossy(&out).into_owned()
}

fn main() -> std::io::Result<()> {
    // Build a small docroot under the system temp directory.
    let root = std::env::temp_dir().join(format!("flash-demo-{}", std::process::id()));
    std::fs::create_dir_all(root.join("papers"))?;
    std::fs::write(
        root.join("index.html"),
        "<html><body><h1>Flash (AMPED) reproduction</h1></body></html>\n",
    )?;
    std::fs::write(
        root.join("papers/flash.html"),
        "<html><body>Pai, Druschel, Zwaenepoel — USENIX 1999</body></html>\n",
    )?;

    // The validating builder: same defaults as `NetConfig::new`, plus
    // a consistency check before any socket is opened.
    let cfg = NetConfig::builder(&root)
        .build()
        .expect("consistent config");
    let server = Server::start("127.0.0.1:0", cfg)?;
    let addr = server.addr();
    println!("AMPED server listening on http://{addr}/ (docroot {root:?})");

    for path in ["/", "/papers/flash.html", "/papers/flash.html", "/missing"] {
        let resp = fetch(addr, &format!("GET {path} HTTP/1.0\r\n\r\n"));
        let status = resp.lines().next().unwrap_or("");
        let body_len = resp.split("\r\n\r\n").nth(1).map(|b| b.len()).unwrap_or(0);
        println!("GET {path:<22} -> {status} ({body_len} body bytes)");
    }

    let stats = server.stats();
    println!(
        "requests: {}, cache hits: {}, helper jobs (disk reads): {}, writev calls: {}",
        stats.requests(),
        stats.cache_hits(),
        stats.helper_jobs(),
        stats.writev_calls(),
    );
    println!(
        "event-loop shards: {} (per-shard accepted: {:?})",
        stats.per_shard().len(),
        stats
            .per_shard()
            .iter()
            .map(|s| s.accepted.load(std::sync::atomic::Ordering::Relaxed))
            .collect::<Vec<_>>(),
    );
    println!("note: the repeated fetch was a cache hit — no helper involved");

    // Exit the way a production deploy would: drain — stop accepting,
    // finish anything in flight (bounded by `NetConfig::drain_timeout`),
    // then tear down. A long-running deployment would drive this from
    // signals instead: `Signals::install_default()` turns
    // SIGTERM/SIGHUP/SIGINT into `drain()` / `reload_docroot()` /
    // `stop_now()` calls — see `examples/graceful_restart.rs`.
    server.drain();
    println!("drained cleanly: all connections served to completion");
    std::fs::remove_dir_all(&root)?;
    Ok(())
}
