//! Large-file smoke test for the `sendfile(2)` body tier: starts the
//! real AMPED server on loopback, fetches a 64 MiB file (far above the
//! default 256 KiB threshold), and checks the response is byte-exact,
//! went out via `sendfile`, and never touched the content cache.
//!
//! Run with: `cargo run --release --example sendfile_smoke`
//! CI runs this on every push; it exits non-zero on any violation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use flash_repro::net::{NetConfig, Server};

const FILE_BYTES: usize = 64 * 1024 * 1024;

fn main() {
    let root = std::env::temp_dir().join(format!("flash-sendfile-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    // A recognizable 256-byte cycle so corruption anywhere in 64 MiB
    // is caught by the checksum below, not just the length.
    let payload: Vec<u8> = (0..FILE_BYTES).map(|i| (i % 251) as u8).collect();
    std::fs::write(root.join("huge.bin"), &payload).unwrap();
    std::fs::write(root.join("index.html"), b"small and cacheable").unwrap();

    let cfg = NetConfig::builder(&root)
        .event_loops(1)
        .build()
        .expect("consistent config");
    let server = Server::start("127.0.0.1:0", cfg).unwrap();
    let addr = server.addr();

    // Warm the small-file tier and snapshot cache residency.
    fetch(addr, "GET /index.html HTTP/1.0\r\n\r\n");
    let resident = server.stats().cache_used_bytes();
    assert!(resident > 0, "small file must be cached");

    let start = Instant::now();
    let resp = fetch(addr, "GET /huge.bin HTTP/1.0\r\n\r\n");
    let elapsed = start.elapsed();
    let body = &resp[resp
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator")
        + 4..];
    assert_eq!(body.len(), FILE_BYTES, "body length mismatch");
    assert_eq!(body, &payload[..], "body bytes mismatch");

    let stats = server.stats();
    assert!(stats.sendfile_calls() > 0, "sendfile tier not exercised");
    assert_eq!(
        stats.bytes_sendfile(),
        FILE_BYTES as u64,
        "all body bytes must flow through sendfile"
    );
    assert_eq!(
        stats.cache_used_bytes(),
        resident,
        "large body must not enter the content cache"
    );

    println!(
        "sendfile smoke OK: {} MiB in {:?} ({:.0} MiB/s), {} sendfile calls, cache untouched at {} bytes",
        FILE_BYTES / (1024 * 1024),
        elapsed,
        FILE_BYTES as f64 / (1024.0 * 1024.0) / elapsed.as_secs_f64(),
        stats.sendfile_calls(),
        resident,
    );

    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

fn fetch(addr: std::net::SocketAddr, req: &str) -> Vec<u8> {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    s.write_all(req.as_bytes()).unwrap();
    let mut out = Vec::new();
    s.read_to_end(&mut out).unwrap();
    out
}
