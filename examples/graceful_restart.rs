//! Zero-downtime restart smoke test: a supervisor-shaped choreography
//! of the full lifecycle subsystem, under client load, in **both
//! accept modes**.
//!
//! The sequence per mode — exactly what a process supervisor would
//! drive across two real processes, compressed into one so CI can
//! assert on both generations' counters:
//!
//! 1. Generation A starts and serves; client threads churn
//!    short-lived connections against it continuously.
//! 2. A's listening sockets are duplicated over a unix control
//!    socket with `SCM_RIGHTS` ([`send_listeners`] /
//!    [`recv_listeners`]) and generation B adopts them with
//!    [`Server::start_inherited`] — the *kernel sockets* move, so the
//!    accept backlog survives and no SYN is ever reset.
//! 3. `SIGTERM` is delivered (really delivered: `kill(getpid())`),
//!    observed through the self-pipe ([`Signals`]), and mapped to
//!    [`Server::drain`] on A — which finishes its in-flight
//!    responses and exits while B keeps accepting.
//! 4. The churn continues against B; at the end, **zero failed or
//!    truncated requests** is the bar, and B must have taken traffic.
//!
//! Run with: `cargo run --release --example graceful_restart`
//! CI runs this on every push; it exits non-zero on any violation.
//! Appends both scenarios to the `BENCH_net.json` perf trajectory.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flash_repro::net::{
    recv_listeners, send_listeners, send_to_self, AcceptMode, BenchReport, NetConfig, Server,
    Signal, Signals,
};

const CLIENT_THREADS: usize = 4;
const BODY: &[u8] = b"<html>served across generations</html>";

/// One short-lived request; any error or truncation is a failure —
/// the whole point of the exercise is that the restart drops nothing.
fn request(addr: SocketAddr) -> Result<(), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("timeout: {e}"))?;
    s.write_all(b"GET /index.html HTTP/1.0\r\nHost: restart\r\n\r\n")
        .map_err(|e| format!("send: {e}"))?;
    let mut resp = Vec::new();
    s.read_to_end(&mut resp).map_err(|e| format!("read: {e}"))?;
    if !resp.starts_with(b"HTTP/1.1 200 OK\r\n") {
        return Err("non-200 response".into());
    }
    if !resp.ends_with(BODY) {
        return Err("truncated body".into());
    }
    Ok(())
}

fn main() {
    let root = std::env::temp_dir().join(format!("flash-graceful-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(root.join("index.html"), BODY).unwrap();

    // The self-pipe is process-global; install once, reuse per mode.
    let mut signals = Signals::install(&[Signal::Term]).expect("install SIGTERM handler");
    let mut report = BenchReport::new();

    for mode in [AcceptMode::Single, AcceptMode::ReusePort] {
        let cfg = || {
            NetConfig::new(&root)
                .with_event_loops(2)
                .with_accept_mode(mode)
                .with_drain_timeout(Duration::from_secs(30))
        };
        let a = Server::start("127.0.0.1:0", cfg()).expect("generation A");
        let addr = a.addr();
        let resolved = a.accept_mode();

        let stop = Arc::new(AtomicBool::new(false));
        let served = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        let clients: Vec<_> = (0..CLIENT_THREADS)
            .map(|_| {
                let stop = Arc::clone(&stop);
                let served = Arc::clone(&served);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        match request(addr) {
                            Ok(()) => {
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("request failed during restart: {e}"),
                        }
                    }
                })
            })
            .collect();

        // Let the churn establish itself against generation A.
        std::thread::sleep(Duration::from_millis(200));

        // The restart: hand the kernel sockets to generation B over a
        // control socket, then SIGTERM the old generation.
        let (control_tx, control_rx) = UnixStream::pair().expect("control socket");
        send_listeners(&control_tx, a.handoff_listeners()).expect("send listener fds");
        let inherited = recv_listeners(&control_rx).expect("receive listener fds");
        let b = Server::start_inherited(cfg(), inherited).expect("generation B");

        send_to_self(Signal::Term).expect("deliver SIGTERM");
        match signals.wait_timeout(Duration::from_secs(5)).expect("wait") {
            Some(Signal::Term) => a.drain(),
            other => panic!("expected SIGTERM through the self-pipe, got {other:?}"),
        }

        // Old generation is gone; the churn must not have noticed.
        std::thread::sleep(Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        for t in clients {
            t.join().expect("a client thread failed a request");
        }

        let elapsed = start.elapsed();
        let total = served.load(Ordering::Relaxed);
        let taken_by_b = b.stats().requests();
        assert!(total > 0, "the churn must have served something");
        assert!(
            taken_by_b > 0,
            "generation B must have taken traffic after the handoff"
        );
        println!(
            "graceful restart OK [{}]: {} requests across the restart, 0 failed; \
             new generation served {}",
            resolved.name(),
            total,
            taken_by_b,
        );
        report.record(
            &format!("graceful_restart/{}", resolved.name()),
            total,
            elapsed.as_secs_f64(),
            true,
        );
        b.stop();
    }

    match report.write() {
        Ok(path) => println!("bench report: {}", path.display()),
        Err(e) => eprintln!("bench report not written: {e}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}
